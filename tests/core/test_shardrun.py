"""Tests for the batched sharded kernel (repro.core.shardrun)."""

import dataclasses
import json

import pytest

from repro.cliutil import dump_json_document
from repro.core.shardrun import (
    ShardProgram,
    ShardRunConfig,
    build_shardrun_parser,
    run_shardrun,
    shardrun_main,
)

# Small but non-trivial: enough flow that every shard trades and the
# index moves, cheap enough to run twice per test.
SMALL = ShardRunConfig(
    n_participants=2000,
    n_symbols=10,
    n_shards=4,
    rate_per_participant_s=25.0,
    duration_s=0.15,
)


class TestShardRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRunConfig(n_shards=11, n_symbols=10)
        with pytest.raises(ValueError):
            ShardRunConfig(n_shards=0)
        with pytest.raises(ValueError):
            ShardRunConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            ShardRunConfig(n_participants=0)
        with pytest.raises(ValueError):
            ShardRunConfig(portfolio_buckets=0)

    def test_lookahead_derivation(self):
        config = ShardRunConfig(md_publish_interval_ms=10.0, gateway_base_latency_us=80.0)
        assert config.lookahead_ns() == 10_000_000 + 2 * 80_000

    def test_window_count_covers_duration(self):
        config = SMALL
        assert config.n_windows() * config.lookahead_ns() >= config.duration_ns()
        assert (config.n_windows() - 1) * config.lookahead_ns() < config.duration_ns()

    def test_config_echo_is_sorted(self):
        keys = list(SMALL.to_dict())
        assert keys == sorted(keys)


class TestShardProgram:
    def test_shard_workload_depends_on_shard_id_not_placement(self):
        # Shard 2 built alone produces the same windows as shard 2
        # built alongside its siblings: RNG streams are keyed by id.
        alone = ShardProgram(SMALL, 2)
        sibling = ShardProgram(SMALL, 2)
        windows = [(w, (w + 1) * SMALL.lookahead_ns()) for w in range(3)]
        feedback = {"index": None}
        for w, t_end in windows:
            a = alone.run_window(w, t_end, feedback)
            b = sibling.run_window(w, t_end, feedback)
            assert a == b
            feedback = {"index": 10_000 + w}
        assert alone.finish() == sibling.finish()

    def test_feedback_moves_prices(self):
        # Same shard, two different feedback histories: the global
        # index genuinely couples into local matching.
        neutral = ShardProgram(SMALL, 0)
        pushed = ShardProgram(SMALL, 0)
        t1 = SMALL.lookahead_ns()
        assert neutral.run_window(0, t1, {"index": None}) == pushed.run_window(
            0, t1, {"index": None}
        )
        r_neutral = neutral.run_window(1, 2 * t1, {"index": 10_000})
        r_pushed = pushed.run_window(1, 2 * t1, {"index": 14_000})
        assert r_neutral != r_pushed
        assert neutral.finish()["last_prices"] != pushed.finish()["last_prices"]

    def test_bucket_accounting_is_zero_sum(self):
        program = ShardProgram(SMALL, 1)
        program.run_window(0, SMALL.lookahead_ns(), {"index": None})
        final = program.finish()
        assert final["net_position"] == 0
        assert final["net_cash"] == 0
        assert final["stats"]["trades"] > 0
        assert final["abs_position"] > 0


class TestRunShardrun:
    def test_deterministic_across_runs(self):
        assert run_shardrun(SMALL) == run_shardrun(SMALL)

    def test_jobs_report_byte_identity(self):
        # The headline contract: process-parallel execution emits
        # byte-identical JSON to the inline golden run.
        inline = dump_json_document(run_shardrun(SMALL, jobs=1))
        sharded = dump_json_document(run_shardrun(SMALL, jobs=3))
        assert sharded == inline

    def test_report_shape_and_conservation(self):
        report = run_shardrun(SMALL)
        assert report["schema"] == "repro-shardrun/1"
        assert report["config"] == SMALL.to_dict()
        assert report["windows"] == SMALL.n_windows() == len(report["index_path"])
        assert len(report["per_shard"]) == SMALL.n_shards
        totals = report["totals"]
        assert totals["orders"] == totals["arrivals"] - totals["unprocessed"]
        assert totals["trades"] > 0
        assert report["conservation"]["net_position"] == 0
        assert report["conservation"]["net_cash"] == 0
        # No nondeterministic fields anywhere in the document.
        assert "wall" not in json.dumps(report)

    def test_seed_changes_report(self):
        other = dataclasses.replace(SMALL, seed=SMALL.seed + 1)
        assert run_shardrun(other) != run_shardrun(SMALL)

    def test_all_orders_eventually_processed(self):
        # Orders stamped past one window's edge are carried by the heap
        # and matched later; only stamps past the final horizon remain.
        report = run_shardrun(SMALL)
        totals = report["totals"]
        assert totals["unprocessed"] < totals["arrivals"] * 0.01
        per_status = (
            totals["accepted"]
            + totals["partially_filled"]
            + totals["filled"]
            + totals["cancelled"]
            + totals["rejected"]
        )
        assert per_status == totals["orders"]


class TestShardrunCli:
    def test_parser_defaults(self):
        args = build_shardrun_parser().parse_args([])
        assert args.jobs == 1
        assert args.json is None

    def test_json_flag_const(self):
        args = build_shardrun_parser().parse_args(["--json"])
        assert args.json == "-"

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = shardrun_main(
            [
                "--participants", "500",
                "--symbols", "4",
                "--shards", "2",
                "--rate", "30",
                "--duration", "0.05",
                "--json", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-shardrun/1"
        stdout = capsys.readouterr().out
        assert "orders/s" in stdout

    def test_cli_jobs_byte_identity(self, tmp_path):
        argv = [
            "--participants", "500",
            "--symbols", "4",
            "--shards", "2",
            "--rate", "30",
            "--duration", "0.05",
        ]
        one = tmp_path / "one.json"
        two = tmp_path / "two.json"
        assert shardrun_main(argv + ["--jobs", "1", "--json", str(one)]) == 0
        assert shardrun_main(argv + ["--jobs", "2", "--json", str(two)]) == 0
        assert one.read_bytes() == two.read_bytes()
