"""Tests for the NTP baseline estimator."""

import pytest

from repro.clocksync.huygens import EstimationError
from repro.clocksync.ntp import NtpEstimator
from repro.clocksync.probes import ProbeExchange


def exchange(theta, d_fwd, d_rev, t=0):
    forward = ProbeExchange(sent_local=t, recv_local=t + d_fwd + theta, sent_true=t)
    reverse = ProbeExchange(sent_local=t + theta, recv_local=t + d_rev, sent_true=t)
    return forward, reverse


class TestNtpEstimator:
    def test_symmetric_path_is_exact(self):
        forward, reverse = exchange(theta=123_456, d_fwd=5_000_000, d_rev=5_000_000)
        estimate = NtpEstimator().estimate([forward], [reverse])
        assert estimate.offset_ns == 123_456

    def test_asymmetric_path_error_is_half_the_asymmetry(self):
        forward, reverse = exchange(theta=0, d_fwd=2_000_000, d_rev=12_000_000)
        estimate = NtpEstimator().estimate([forward], [reverse])
        assert estimate.offset_ns == (2_000_000 - 12_000_000) // 2

    def test_uses_latest_sample(self):
        old_f, old_r = exchange(theta=1_000, d_fwd=100, d_rev=100, t=0)
        new_f, new_r = exchange(theta=9_000, d_fwd=100, d_rev=100, t=1_000_000)
        estimate = NtpEstimator().estimate([old_f, new_f], [old_r, new_r])
        assert estimate.offset_ns == 9_000

    def test_averaging_window(self):
        f1, r1 = exchange(theta=1_000, d_fwd=100, d_rev=100, t=0)
        f2, r2 = exchange(theta=3_000, d_fwd=100, d_rev=100, t=1_000_000)
        estimate = NtpEstimator(samples_to_average=2).estimate([f1, f2], [r1, r2])
        assert estimate.offset_ns == 2_000

    def test_no_rate_estimation(self):
        forward, reverse = exchange(theta=0, d_fwd=100, d_rev=100)
        assert NtpEstimator().estimate([forward], [reverse]).rate_ppb == 0

    def test_rate_hint_ignored(self):
        forward, reverse = exchange(theta=500, d_fwd=100, d_rev=100)
        estimate = NtpEstimator().estimate([forward], [reverse], rate_hint_ppb=99_999)
        assert estimate.offset_ns == 500
        assert estimate.rate_ppb == 0

    def test_empty_raises(self):
        with pytest.raises(EstimationError):
            NtpEstimator().estimate([], [])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            NtpEstimator(samples_to_average=0)
