"""Zero-intelligence (ZI) order flow.

The canonical synthetic-market workload (Gode & Sunder style): each
opportunity places an order on a uniformly random symbol and side at a
price drawn around the current reference price.  Despite having no
strategy, ZI flow produces realistic book dynamics -- a random-walk
mid price, two-sided depth, and a steady stream of crossings -- which
is all the exchange-side evaluations need.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.participant import Participant
from repro.core.types import Side, Symbol
from repro.traders.base import Strategy


def zi_bulk_fields(
    rng: np.random.Generator,
    n: int,
    n_symbols: int,
    min_qty: int = 1,
    max_qty: int = 100,
    aggression: float = 0.18,
    market_order_fraction: float = 0.10,
    price_sigma_ticks: float = 15.0,
) -> dict:
    """Draw ``n`` ZI order rows at once (the batched-kernel workload).

    Vectorized mirror of :meth:`ZeroIntelligenceStrategy.on_order_opportunity`'s
    distributions for the no-cancel case: uniform symbol and side,
    uniform quantity, a ``market_order_fraction`` coin, and a limit
    price expressed as a signed tick ``offset`` relative to whatever
    reference price applies at match time -- aggressive rows price 1-3
    ticks through the touch, passive rows rest
    ``1 + |round(N(0, sigma))|`` ticks behind, with the sign already
    folded in for the drawn side.  Deferring the reference-price
    addition to match time is what lets a sharded run pre-draw whole
    chunks without knowing the future price path: feedback moves the
    center, never the draws.

    The draw order (symbol, side, qty, market, aggression, through,
    behind) is fixed and size-independent per call, part of the batched
    kernel's determinism contract.
    """
    symbol = rng.integers(0, n_symbols, size=n)
    side_buy = rng.random(size=n) < 0.5
    qty = rng.integers(min_qty, max_qty + 1, size=n)
    market = rng.random(size=n) < market_order_fraction
    aggressive = rng.random(size=n) < aggression
    through = rng.integers(1, 4, size=n)
    behind = 1 + np.abs(np.rint(rng.normal(0.0, price_sigma_ticks, size=n)).astype(np.int64))
    offset = np.where(aggressive, through, -behind)
    offset = np.where(side_buy, offset, -offset)
    return {
        "symbol": symbol,
        "side_buy": side_buy,
        "qty": qty,
        "market": market,
        "offset": offset,
    }


class ZeroIntelligenceStrategy(Strategy):
    """Random orders around the reference price.

    Parameters
    ----------
    symbols:
        Symbols this trader is active in (usually its subscriptions).
    fallback_price:
        Reference price used before any market data arrives.
    price_sigma_ticks:
        Scale of the passive limit-price offset behind the reference;
        larger values build deeper, wider books.
    min_qty, max_qty:
        Uniform order-size range.
    aggression:
        Probability a limit order is priced *through* the touch (and
        so trades immediately against the book).  The realized
        trades-per-order ratio tracks ``aggression +
        market_order_fraction``; the paper's second deployment saw
        ~8% (4.2M orders, 330k trades), course-bot flow considerably
        more.
    market_order_fraction:
        Probability an opportunity becomes a market order.
    cancel_fraction:
        Probability an opportunity instead cancels a working order.
    """

    def __init__(
        self,
        symbols: Sequence[Symbol],
        fallback_price: int,
        price_sigma_ticks: float = 15.0,
        min_qty: int = 1,
        max_qty: int = 100,
        aggression: float = 0.18,
        market_order_fraction: float = 0.10,
        cancel_fraction: float = 0.05,
    ) -> None:
        if not symbols:
            raise ValueError("ZI trader needs at least one symbol")
        if fallback_price <= 0:
            raise ValueError(f"fallback price must be positive, got {fallback_price}")
        if not 0 < min_qty <= max_qty:
            raise ValueError(f"bad quantity range [{min_qty}, {max_qty}]")
        if not 0.0 <= aggression <= 1.0:
            raise ValueError(f"aggression must be in [0,1], got {aggression}")
        if market_order_fraction + cancel_fraction > 1.0:
            raise ValueError("market + cancel fractions exceed 1")
        self.symbols: List[Symbol] = list(symbols)
        self.fallback_price = fallback_price
        self.price_sigma_ticks = price_sigma_ticks
        self.min_qty = min_qty
        self.max_qty = max_qty
        self.aggression = aggression
        self.market_order_fraction = market_order_fraction
        self.cancel_fraction = cancel_fraction

    def on_start(self, participant: Participant) -> None:
        participant.subscribe(self.symbols)

    def _reference(self, participant: Participant, symbol: Symbol) -> int:
        ref = participant.view(symbol).reference_price
        return ref if ref is not None and ref > 0 else self.fallback_price

    def on_order_opportunity(self, participant: Participant, rng: np.random.Generator) -> None:
        roll = rng.random()
        if roll < self.cancel_fraction and participant.working:
            # Cancel the oldest working order.
            client_order_id = next(iter(participant.working))
            order = participant.working[client_order_id]
            participant.cancel(client_order_id, order.symbol)
            return

        symbol = self.symbols[int(rng.integers(len(self.symbols)))]
        side = Side.BUY if rng.random() < 0.5 else Side.SELL
        quantity = int(rng.integers(self.min_qty, self.max_qty + 1))
        if roll < self.cancel_fraction + self.market_order_fraction:
            participant.submit_market(symbol, side, quantity)
            return
        reference = self._reference(participant, symbol)
        if rng.random() < self.aggression:
            # Marketable: price a couple of ticks through the touch.
            through = int(rng.integers(1, 4))
            offset = through if side is Side.BUY else -through
        else:
            # Passive: rest behind the reference price.
            behind = 1 + abs(int(round(rng.normal(0.0, self.price_sigma_ticks))))
            offset = -behind if side is Side.BUY else behind
        price = max(1, reference + offset)
        participant.submit_limit(symbol, side, quantity, price)
