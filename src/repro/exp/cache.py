"""Content-hashed on-disk cache for sweep task results.

A cache entry is keyed by everything that determines a task's result:
the fully-resolved task payload (config overrides including the seed,
offered rate, measurement windows) *and* a hash of the simulator's own
source tree.  Editing any file under ``repro/`` therefore invalidates
every entry automatically -- the cache can never serve results from an
older build of the simulator -- while re-running an unchanged sweep
executes zero tasks.

Entries are one JSON file each under ``.repro-cache/`` (configurable),
safe to delete wholesale at any time.  The directory is size-bounded:
:meth:`ResultCache.put` periodically prunes the oldest entries (by
mtime) once the directory exceeds ``max_bytes``, so long-lived sweep
and serve hosts never grow an unbounded cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

DEFAULT_CACHE_DIR = ".repro-cache"

#: Default size budget for a cache directory (512 MiB).  A cache entry
#: is a few KiB of aggregated metrics, so the default keeps ~10^5
#: results -- bounded, not stingy.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Prune on every Nth put: a directory scan is O(entries), so pruning
#: per-put would make a large sweep quadratic in its own cache.
PRUNE_EVERY = 64

_code_version: Optional[str] = None


def code_version_hash() -> str:
    """BLAKE2 digest over the installed ``repro`` package's sources.

    Hashes every ``*.py`` file under the package root in sorted
    relative-path order (path and content both feed the digest), so
    renames, additions, and edits all change the version.  Memoized
    per process: the tree cannot change under a running sweep.
    """
    global _code_version
    if _code_version is not None:
        return _code_version
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _code_version = digest.hexdigest()
    return _code_version


def content_key(payload: Dict[str, object], code_version: Optional[str] = None) -> str:
    """Content-addressed key for a JSON-able payload + simulator build.

    BLAKE2 over the canonical payload JSON and the source-tree hash --
    the same keying the sweep cache uses, exposed at module level so
    other subsystems (the ``repro.serve`` run store) can derive
    provenance identifiers without owning a cache directory.
    """
    if code_version is None:
        code_version = code_version_hash()
    blob = json.dumps(
        {"payload": payload, "code": code_version},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


class ResultCache:
    """One-file-per-result cache with content-hashed keys."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self._puts = 0

    def key_for(self, payload: Dict[str, object], code_version: Optional[str] = None) -> str:
        """The cache key for a task payload (see module docstring)."""
        return content_key(payload, code_version)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result for ``key``, or None.

        A corrupt entry (interrupted write, manual tampering) reads as
        a miss and is removed, never an error.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Dict[str, object]) -> None:
        """Store a result atomically (rename over a temp file).

        Every :data:`PRUNE_EVERY`-th put (including the first, which
        catches a directory left oversized by an earlier process)
        triggers :meth:`prune` to keep the directory under
        ``max_bytes``.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(result, sort_keys=True))
        os.replace(tmp, path)
        self._puts += 1
        if self._puts % PRUNE_EVERY == 1:
            self.prune()

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict oldest entries (by mtime, then name) until the
        directory fits ``max_bytes``.  The newest entry always
        survives, even if it alone exceeds the budget -- evicting the
        result that was just computed would make the cache useless.
        Returns the number of entries evicted.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        entries = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with another pruner
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
            total += stat.st_size
        entries.sort()
        evicted = 0
        for _, _, path, size in entries[:-1]:  # newest always survives
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evicted += evicted
        return evicted

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, evicted={self.evicted})"
        )
