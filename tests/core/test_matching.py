"""Tests for continuous price-time matching."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import MatchingEngineCore
from repro.core.messages import StampedCancel
from repro.core.order import Order
from repro.core.portfolio import PortfolioMatrix
from repro.core.types import OrderStatus, OrderType, RejectReason, Side, TimeInForce

_ids = itertools.count(1)


def order(side, qty, price=None, otype=None, participant="p1", ts=None, tif=TimeInForce.GTC):
    coid = next(_ids)
    if otype is None:
        otype = OrderType.LIMIT if price is not None else OrderType.MARKET
    return Order(
        client_order_id=coid,
        participant_id=participant,
        symbol="S",
        side=side,
        order_type=otype,
        quantity=qty,
        limit_price=price,
        time_in_force=tif,
        gateway_id="g",
        gateway_timestamp=ts if ts is not None else coid,
        gateway_seq=coid,
    )


@pytest.fixture
def core():
    portfolio = PortfolioMatrix(default_cash=1_000_000)
    for pid in ("p1", "p2", "p3"):
        portfolio.open_account(pid)
    return MatchingEngineCore(["S"], portfolio)


class TestLimitOrders:
    def test_non_crossing_limit_rests(self, core):
        result = core.process_order(order(Side.BUY, 10, price=100), now_local=0)
        assert result.confirmation.status is OrderStatus.ACCEPTED
        assert result.trades == []
        assert core.books["S"].best_bid() == 100

    def test_crossing_limit_trades_at_resting_price(self, core):
        core.process_order(order(Side.SELL, 10, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10, price=105), 1)
        assert result.confirmation.status is OrderStatus.FILLED
        assert len(result.trades) == 1
        assert result.trades[0].price == 100  # resting price, not 105

    def test_partial_fill_rests_remainder(self, core):
        core.process_order(order(Side.SELL, 4, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10, price=100), 1)
        assert result.confirmation.status is OrderStatus.PARTIALLY_FILLED
        assert result.confirmation.filled == 4
        assert result.confirmation.remaining == 6
        assert core.books["S"].best_bid() == 100

    def test_sweeps_multiple_levels(self, core):
        core.process_order(order(Side.SELL, 5, price=100, participant="p2"), 0)
        core.process_order(order(Side.SELL, 5, price=101, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10, price=101), 1)
        assert result.confirmation.status is OrderStatus.FILLED
        assert [t.price for t in result.trades] == [100, 101]

    def test_price_priority_across_levels(self, core):
        core.process_order(order(Side.SELL, 5, price=102, participant="p2"), 0)
        core.process_order(order(Side.SELL, 5, price=100, participant="p3"), 0)
        result = core.process_order(order(Side.BUY, 5, price=105), 1)
        assert result.trades[0].seller == "p3"  # best price first

    def test_time_priority_within_level(self, core):
        core.process_order(order(Side.SELL, 5, price=100, participant="p2", ts=100), 0)
        core.process_order(order(Side.SELL, 5, price=100, participant="p3", ts=50), 0)
        result = core.process_order(order(Side.BUY, 5, price=100), 1)
        assert result.trades[0].seller == "p3"  # earlier gateway timestamp

    def test_no_self_crossing_restriction(self, core):
        """Course-style deployments allow self-trades; they net to zero."""
        core.process_order(order(Side.SELL, 5, price=100, participant="p1"), 0)
        result = core.process_order(order(Side.BUY, 5, price=100, participant="p1"), 1)
        assert len(result.trades) == 1
        assert core.portfolio.account("p1").position("S") == 0

    def test_ioc_remainder_cancelled(self, core):
        core.process_order(order(Side.SELL, 4, price=100, participant="p2"), 0)
        result = core.process_order(
            order(Side.BUY, 10, price=100, tif=TimeInForce.IOC), 1
        )
        assert result.confirmation.status is OrderStatus.PARTIALLY_FILLED
        assert result.confirmation.remaining == 0
        assert core.books["S"].best_bid() is None

    def test_ioc_no_fill_cancelled(self, core):
        result = core.process_order(order(Side.BUY, 10, price=90, tif=TimeInForce.IOC), 0)
        assert result.confirmation.status is OrderStatus.CANCELLED
        assert core.books["S"].resting_count() == 0


class TestMarketOrders:
    def test_market_fills_against_book(self, core):
        core.process_order(order(Side.SELL, 10, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10), 1)
        assert result.confirmation.status is OrderStatus.FILLED
        assert result.trades[0].price == 100

    def test_market_empty_book_rejected(self, core):
        result = core.process_order(order(Side.BUY, 10), 0)
        assert result.confirmation.status is OrderStatus.REJECTED
        assert result.confirmation.reason is RejectReason.NO_LIQUIDITY

    def test_market_partial_fill_does_not_rest(self, core):
        core.process_order(order(Side.SELL, 4, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10), 1)
        assert result.confirmation.status is OrderStatus.PARTIALLY_FILLED
        assert result.confirmation.remaining == 0
        assert core.books["S"].resting_count() == 0


class TestTradeEffects:
    def test_portfolio_settlement(self, core):
        core.process_order(order(Side.SELL, 10, price=100, participant="p2"), 0)
        core.process_order(order(Side.BUY, 10, price=100, participant="p1"), 1)
        assert core.portfolio.account("p1").position("S") == 10
        assert core.portfolio.account("p1").cash == 1_000_000 - 1_000
        assert core.portfolio.account("p2").position("S") == -10
        assert core.portfolio.account("p2").cash == 1_000_000 + 1_000

    def test_trade_confirmations_for_both_sides(self, core):
        core.process_order(order(Side.SELL, 10, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10, price=100, participant="p1"), 1)
        participants = {tc.participant_id for tc in result.trade_confirmations}
        assert participants == {"p1", "p2"}
        buys = [tc for tc in result.trade_confirmations if tc.is_buy]
        assert len(buys) == 1 and buys[0].participant_id == "p1"

    def test_trade_ids_unique_and_increasing(self, core):
        core.process_order(order(Side.SELL, 5, price=100, participant="p2"), 0)
        core.process_order(order(Side.SELL, 5, price=101, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 10, price=101), 1)
        ids = [t.trade_id for t in result.trades]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_aggressor_flag(self, core):
        core.process_order(order(Side.SELL, 5, price=100, participant="p2"), 0)
        result = core.process_order(order(Side.BUY, 5, price=100), 1)
        assert result.trades[0].aggressor_is_buy is True

    def test_last_trade_price_updates_reference(self, core):
        assert core.reference_price("S") is None
        core.process_order(order(Side.SELL, 5, price=100, participant="p2"), 0)
        core.process_order(order(Side.BUY, 5, price=100), 1)
        assert core.reference_price("S") == 100

    def test_reference_price_falls_back_to_mid(self, core):
        core.process_order(order(Side.BUY, 5, price=98), 0)
        core.process_order(order(Side.SELL, 5, price=104, participant="p2"), 0)
        assert core.reference_price("S") == 101


class TestRejections:
    def test_unknown_symbol(self, core):
        bad = order(Side.BUY, 10, price=100)
        bad.symbol = "UNKNOWN"
        result = core.process_order(bad, 0)
        assert result.confirmation.reason is RejectReason.UNKNOWN_SYMBOL

    def test_duplicate_resting_client_id(self, core):
        first = order(Side.BUY, 10, price=90)
        result1 = core.process_order(first, 0)
        assert result1.confirmation.status is OrderStatus.ACCEPTED
        dup = order(Side.BUY, 10, price=91)
        dup.client_order_id = first.client_order_id
        result2 = core.process_order(dup, 1)
        assert result2.confirmation.reason is RejectReason.DUPLICATE_ORDER_ID


class TestCancels:
    def _cancel(self, target: Order) -> StampedCancel:
        return StampedCancel(
            participant_id=target.participant_id,
            client_order_id=target.client_order_id,
            symbol=target.symbol,
            gateway_id="g",
            gateway_timestamp=10**9,
            gateway_seq=10**6,
        )

    def test_cancel_resting_order(self, core):
        resting = order(Side.BUY, 10, price=95)
        core.process_order(resting, 0)
        confirmation = core.process_cancel(self._cancel(resting), 1)
        assert confirmation.status is OrderStatus.CANCELLED
        assert core.books["S"].resting_count() == 0

    def test_cancel_unknown_rejected(self, core):
        fake = order(Side.BUY, 10, price=95)
        confirmation = core.process_cancel(self._cancel(fake), 1)
        assert confirmation.status is OrderStatus.REJECTED
        assert confirmation.reason is RejectReason.UNKNOWN_ORDER

    def test_cancel_after_fill_rejected(self, core):
        resting = order(Side.SELL, 5, price=100, participant="p2")
        core.process_order(resting, 0)
        core.process_order(order(Side.BUY, 5, price=100), 1)
        confirmation = core.process_cancel(self._cancel(resting), 2)
        assert confirmation.status is OrderStatus.REJECTED

    def test_cancel_partial_fill_reports_filled_qty(self, core):
        resting = order(Side.SELL, 10, price=100, participant="p2")
        core.process_order(resting, 0)
        core.process_order(order(Side.BUY, 4, price=100), 1)
        confirmation = core.process_cancel(self._cancel(resting), 2)
        assert confirmation.status is OrderStatus.CANCELLED
        assert confirmation.filled == 4
        assert confirmation.remaining == 6


class TestSnapshot:
    def test_snapshot_structure(self, core):
        core.process_order(order(Side.BUY, 5, price=99), 0)
        core.process_order(order(Side.SELL, 7, price=101, participant="p2"), 0)
        snapshot = core.snapshot("S", now_local=42)
        assert snapshot.bids == ((99, 5),)
        assert snapshot.asks == ((101, 7),)
        assert snapshot.taken_local == 42
        assert snapshot.spread == 2
        assert snapshot.mid_price == 100.0


@given(
    flow=st.lists(
        st.tuples(
            st.sampled_from([Side.BUY, Side.SELL]),
            st.integers(1, 30),  # qty
            st.one_of(st.none(), st.integers(95, 105)),  # None = market
            st.sampled_from(["p1", "p2", "p3"]),
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=200, deadline=None)
def test_conservation_properties(flow):
    """Shares and cash are conserved; remaining quantities never negative."""
    portfolio = PortfolioMatrix(default_cash=10**9)
    for pid in ("p1", "p2", "p3"):
        portfolio.open_account(pid)
    core = MatchingEngineCore(["S"], portfolio)
    for i, (side, qty, price, pid) in enumerate(flow):
        o = Order(
            client_order_id=1_000_000 + i,
            participant_id=pid,
            symbol="S",
            side=side,
            order_type=OrderType.LIMIT if price is not None else OrderType.MARKET,
            quantity=qty,
            limit_price=price,
            gateway_id="g",
            gateway_timestamp=i,
            gateway_seq=i,
        )
        result = core.process_order(o, now_local=i)
        assert o.remaining >= 0
        assert result.confirmation.filled + o.remaining == qty
        # Every trade produced exactly two confirmations.
        assert len(result.trade_confirmations) == 2 * len(result.trades)

    assert portfolio.total_shares("S") == 0
    assert portfolio.total_cash() == 3 * 10**9
    # The book never crosses itself after processing settles.
    bid, ask = core.books["S"].best_bid(), core.books["S"].best_ask()
    if bid is not None and ask is not None:
        assert bid < ask
