"""Shared fixtures for the CloudEx reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.cluster import CloudExCluster
from repro.core.config import CloudExConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(1234)


def small_config(**overrides) -> CloudExConfig:
    """A fast, small-but-complete cluster configuration for tests."""
    defaults = dict(
        seed=42,
        n_participants=6,
        n_gateways=3,
        n_shards=1,
        n_symbols=8,
        orders_per_participant_per_s=120.0,
        subscriptions_per_participant=2,
        snapshot_interval_ms=50.0,
        sequencer_delay_us=400.0,
        holdrelease_delay_us=900.0,
        market_order_fraction=0.05,
        cancel_fraction=0.05,
    )
    defaults.update(overrides)
    return CloudExConfig(**defaults)


@pytest.fixture
def small_cluster() -> CloudExCluster:
    """A small cluster, workload attached, not yet run."""
    cluster = CloudExCluster(small_config())
    cluster.add_default_workload()
    return cluster
