"""DBO-style inbound ordering: delay bounds, no clock sync.

DBO (Goyal et al., PAPERS.md) observes that response-time fairness
does not need globally synchronized clocks: it needs each message
ordered by when it *would have arrived* had it taken the fastest path
its (participant, gateway) pair has ever exhibited.  This backend
implements that idea against the per-gateway paths of the CloudEx
topology:

- For every order the engine records the **lag** between its local
  receipt time and the order's gateway timestamp.  The lag is the sum
  of (unknown gateway clock offset) + (gateway service) + (path
  delay); a sliding-window *minimum* of it converges on (offset + the
  minimum path delay), cancelling the clock offset without ever
  estimating it -- the reason DBO needs no sync.
- An order stamped ``t_g`` at gateway *g* is assigned the **virtual
  arrival** ``v = t_g + min_lag(g)``: the engine-local instant it
  would have arrived via *g*'s fastest observed path.  Virtual
  arrivals of different gateways live on the engine's own clock, so
  they are mutually comparable even though the gateway clocks are not.
- Orders are released in virtual-arrival order after a **guard**
  delay: the largest lag *residual* (window max - window min, i.e. the
  observed path-jitter bound) across gateways, capped at
  ``dbo_guard_cap_us``.  The guard gives an earlier-stamped order on a
  currently-jittery path time to arrive, and the cap bounds the added
  latency -- under calm networks the guard collapses toward zero,
  which is how DBO undercuts a fixed ``d_s`` on latency.

Outbound market data is released on arrival (DBO has no dissemination
story), so ``engine_hold_ns`` is 0.  No RNG stream is consumed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.fairness.base import FairnessPolicy, ReleaseRecorder
from repro.fairness.noop import ImmediateRelease
from repro.sim.timeunits import MICROSECOND


class _PathBound:
    """Sliding-window lag statistics for one gateway's path."""

    __slots__ = ("window", "samples")

    def __init__(self, window: int) -> None:
        self.samples: Deque[int] = deque(maxlen=window)

    def observe(self, lag_ns: int) -> None:
        self.samples.append(lag_ns)

    def min_lag(self) -> int:
        return min(self.samples)

    def residual(self) -> int:
        return max(self.samples) - min(self.samples)


class DelayBoundOrdering(ReleaseRecorder):
    """Inbound ordering by per-gateway delay bounds (see module doc)."""

    def __init__(self, sim, clock, on_eligible, window: int, guard_cap_ns: int,
                 on_sample=None, on_release=None):
        super().__init__(on_sample)
        self.sim = sim
        self.clock = clock
        self.on_eligible = on_eligible
        self.window = window
        self.guard_cap_ns = guard_cap_ns
        self.on_release = on_release
        self._bounds: Dict[str, _PathBound] = {}
        # Heap entries: (virtual_arrival, priority_key, seq, item,
        # stamped_true, enqueued_local).  The virtual arrival is frozen
        # at enqueue (with the bounds known then) so heap order is
        # stable; the guard is evaluated live at release time.
        self._heap: List[tuple] = []
        self._seq = 0
        self._wakeup = None
        self._wakeup_target = 0

    # -- protocol: producer side --------------------------------------
    def enqueue(self, priority_key: tuple, item: Any, stamped_true: int) -> None:
        gateway_ts, gateway_id = priority_key[0], priority_key[1]
        enqueued_local = self.clock.now()
        bound = self._bounds.get(gateway_id)
        if bound is None:
            bound = self._bounds[gateway_id] = _PathBound(self.window)
        bound.observe(enqueued_local - gateway_ts)
        virtual = gateway_ts + bound.min_lag()
        entry = (virtual, priority_key, self._seq, item, stamped_true, enqueued_local)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self.enqueued_count += 1
        if self._heap[0] is entry:
            self._arm_or_notify()

    def guard_ns(self) -> int:
        """Current guard: the worst observed path-jitter bound, capped."""
        worst = 0
        for bound in self._bounds.values():
            residual = bound.residual()
            if residual > worst:
                worst = residual
        return worst if worst < self.guard_cap_ns else self.guard_cap_ns

    @property
    def delay_ns(self) -> int:
        """The live guard, surfaced under the shared diagnostic name."""
        return self.guard_ns()

    def set_delay(self, delay_ns: int) -> None:
        """The guard is measured, not set; DDP is rejected in config."""

    # -- protocol: consumer side --------------------------------------
    def _head_release_local(self) -> Optional[int]:
        if not self._heap:
            return None
        return self._heap[0][0] + self.guard_ns()

    def pop_eligible(self):
        release_at = self._head_release_local()
        if release_at is None:
            return None
        now_local = self.clock.now()
        if release_at > now_local:
            self._arm(release_at)
            return None
        _, key, _, item, stamped_true, enqueued_local = heapq.heappop(self._heap)
        eligible_local = max(enqueued_local, release_at)
        self.record_release(key[0], stamped_true, enqueued_local, eligible_local)
        if self.on_release is not None:
            self.on_release(item, eligible_local)
        return item

    # -- release timer (same shape as Sequencer's) --------------------
    def _arm(self, release_at_local: int) -> None:
        if (
            self._wakeup is not None
            and not self._wakeup.cancelled
            and self._wakeup_target <= release_at_local
        ):
            return
        if self._wakeup is not None:
            self._wakeup.cancel()
        self._wakeup = self.clock.schedule_at_local(release_at_local, self._fire)
        self._wakeup_target = release_at_local

    def _arm_or_notify(self) -> None:
        release_at = self._head_release_local()
        if release_at is None:
            return
        if release_at <= self.clock.now():
            self.on_eligible()
        else:
            self._arm(release_at)

    def _fire(self) -> None:
        self._wakeup = None
        if self._heap:
            self.on_eligible()

    # -- protocol: diagnostics ----------------------------------------
    def pending(self) -> int:
        return len(self._heap)

    def pending_items(self) -> List[Any]:
        return [entry[3] for entry in self._heap]

    def __repr__(self) -> str:
        return (
            f"DelayBoundOrdering(guard={self.guard_ns()}ns, pending={len(self._heap)}, "
            f"released={self.released_count})"
        )


class DboPolicy(FairnessPolicy):
    """Response-time fairness via measured delay bounds (no clock sync)."""

    name = "dbo"

    def build_inbound(
        self, *, sim, clock, on_eligible, config, rngs, shard_id,
        on_sample=None, on_release=None,
    ):
        return DelayBoundOrdering(
            sim,
            clock,
            on_eligible,
            window=config.dbo_window,
            guard_cap_ns=int(config.dbo_guard_cap_us * MICROSECOND),
            on_sample=on_sample,
            on_release=on_release,
        )

    def build_outbound(
        self, *, sim, clock, gateway_id, release, report, config, rngs,
        events=None, late_counter=None,
    ):
        return ImmediateRelease(
            sim, clock, gateway_id, release, report=report, events=events,
            late_counter=late_counter,
        )

    def engine_hold_ns(self, config, rngs) -> int:
        return 0
