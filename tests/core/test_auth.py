"""Tests for gateway authentication."""

import pytest

from repro.core.auth import AuthRegistry


class TestAuthRegistry:
    def test_verify_accepts_registered_token(self):
        auth = AuthRegistry()
        auth.register("p1", "secret")
        assert auth.verify("p1", "secret")

    def test_verify_rejects_wrong_token(self):
        auth = AuthRegistry()
        auth.register("p1", "secret")
        assert not auth.verify("p1", "wrong")

    def test_verify_rejects_unknown_participant(self):
        assert not AuthRegistry().verify("ghost", "anything")

    def test_rotation_invalidates_old_token(self):
        auth = AuthRegistry()
        auth.register("p1", "old")
        auth.register("p1", "new")
        assert not auth.verify("p1", "old")
        assert auth.verify("p1", "new")

    def test_revoke(self):
        auth = AuthRegistry()
        auth.register("p1", "t")
        assert auth.revoke("p1") is True
        assert not auth.verify("p1", "t")
        assert auth.revoke("p1") is False

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            AuthRegistry().register("p1", "")

    def test_is_known_and_len(self):
        auth = AuthRegistry()
        auth.register("p1", "t")
        assert auth.is_known("p1")
        assert not auth.is_known("p2")
        assert len(auth) == 1

    def test_mint_token_deterministic_and_distinct(self):
        a = AuthRegistry.mint_token("p1", "op-secret")
        b = AuthRegistry.mint_token("p1", "op-secret")
        c = AuthRegistry.mint_token("p2", "op-secret")
        d = AuthRegistry.mint_token("p1", "other-secret")
        assert a == b
        assert a != c and a != d
