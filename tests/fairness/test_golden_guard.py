"""The refactor guard: cloudex is the pre-refactor exchange, bit for bit.

The pluggable-policy refactor moved Sequencer/HoldReleaseBuffer
construction behind :class:`repro.fairness.FairnessPolicy`.  The
``cloudex`` backend must reproduce the committed golden fixture exactly
(same constructor arguments, no RNG stream consumed, same event
schedule), while ``noop`` -- same seed, same workload, machinery off --
must visibly diverge, proving the policy switch actually reaches the
mechanisms.
"""

import json
from pathlib import Path

from repro.core.cluster import CloudExCluster
from tests.conftest import small_config

GOLDEN = Path(__file__).parent.parent / "integration" / "golden" / "golden_small_cluster.json"


def run_summary(**overrides):
    cluster = CloudExCluster(small_config(**overrides))
    cluster.add_default_workload(rate_per_participant=200.0)
    cluster.run(duration_s=0.6)
    summary = cluster.metrics.summary()
    summary["events_processed"] = cluster.sim.events_processed
    summary["d_s"] = cluster.exchange.current_sequencer_delay_ns()
    summary["d_h"] = cluster.exchange.d_h
    summary["rows"] = cluster.trade_table.row_count()
    summary["md_finalized_at_end"] = cluster.finalize_metrics()
    summary["cpu"] = sorted(cluster.cpu_report().items())
    return json.loads(json.dumps(summary, sort_keys=True))


def test_explicit_cloudex_matches_golden_fixture():
    # fairness_policy="cloudex" spelled out (the default the fixture
    # was recorded under) goes through the full make_policy path and
    # must still be bit-identical to the pre-refactor run.
    expected = json.loads(GOLDEN.read_text())
    assert run_summary(fairness_policy="cloudex") == expected


def test_noop_diverges_from_golden_fixture():
    expected = json.loads(GOLDEN.read_text())
    actual = run_summary(fairness_policy="noop")
    assert actual != expected
    # And not by accident of some unrelated counter: the fairness
    # machinery itself is off.
    assert actual["d_s"] == 0
    assert actual["d_h"] == 0
    # Fewer simulator events: no release timers were ever armed.
    assert actual["events_processed"] < expected["events_processed"]
