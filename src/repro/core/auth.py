"""Participant authentication at the gateways.

Paper §2.1: "Gateways are also required to secure the matching engine
from abuse, e.g., unauthenticated or invalid orders.  The order handler
authenticates and validates orders received from the participants."

Tokens are opaque shared secrets registered with the exchange operator
out of band (in the cluster builder).  Real deployments would use TLS
client certs or cloud IAM; a shared-secret table exercises the same
accept/reject code path in the gateway.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict


class AuthRegistry:
    """Shared-secret credential table consulted by gateway order handlers."""

    def __init__(self) -> None:
        self._tokens: Dict[str, str] = {}

    def register(self, participant_id: str, token: str) -> None:
        """Enroll (or rotate) a participant's credential."""
        if not token:
            raise ValueError("token must be non-empty")
        self._tokens[participant_id] = token

    def revoke(self, participant_id: str) -> bool:
        """Remove a participant's credential; True if one existed."""
        return self._tokens.pop(participant_id, None) is not None

    def verify(self, participant_id: str, token: str) -> bool:
        """Constant-time credential check."""
        expected = self._tokens.get(participant_id)
        if expected is None:
            return False
        return hmac.compare_digest(expected, token)

    def is_known(self, participant_id: str) -> bool:
        return participant_id in self._tokens

    @staticmethod
    def mint_token(participant_id: str, operator_secret: str) -> str:
        """Derive a participant token from the operator's secret --
        lets the cluster builder issue credentials deterministically."""
        mac = hmac.new(operator_secret.encode(), participant_id.encode(), hashlib.sha256)
        return mac.hexdigest()

    def __len__(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:
        return f"AuthRegistry(participants={len(self._tokens)})"
