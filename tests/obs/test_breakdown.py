"""Unit tests for repro.obs.breakdown (synthetic traces)."""

from repro.obs import tracing
from repro.obs.breakdown import (
    END_TO_END,
    STAGES,
    breakdown_table,
    clock_error_table,
    decompose,
    ros_attribution,
    ros_attribution_table,
    stage_durations_ns,
)
from repro.obs.tracing import Tracer


def build_trace(tracer, participant, order_id, base, winner="g01", loser="g00"):
    """One complete synthetic trace with round-number stage durations."""
    tracer.begin_order(participant, order_id, "SYM0", base, base - 5, participant)
    tracer.span(participant, order_id, tracing.GW_INGRESS, base + 100, base + 101, winner)
    tracer.span(participant, order_id, tracing.GW_INGRESS, base + 130, base + 129, loser)
    tracer.span(participant, order_id, tracing.ROS_DEDUP, base + 300, base + 300, "engine", detail=winner)
    tracer.span(participant, order_id, tracing.ROS_DEDUP, base + 350, base + 350, "engine", detail=loser)
    tracer.span(participant, order_id, tracing.SEQ_HOLD, base + 700, base + 700, "engine")
    tracer.span(participant, order_id, tracing.MATCH, base + 750, base + 750, "engine")
    tracer.span(participant, order_id, tracing.CONFIRM_DELIVERY, base + 900, base + 893, participant)


class TestStageDurations:
    def test_durations_telescope_to_e2e(self):
        tracer = Tracer()
        build_trace(tracer, "p00", 1, base=1000)
        trace = tracer.get("p00", 1)
        durations = stage_durations_ns(trace)
        assert durations is not None
        stage_sum = sum(durations[label] for label, _, _ in STAGES)
        assert stage_sum == durations[END_TO_END] == trace.e2e_ns() == 900

    def test_incomplete_trace_skipped(self):
        tracer = Tracer()
        tracer.begin_order("p00", 1, "SYM0", 0, 0, "p00")
        assert stage_durations_ns(tracer.get("p00", 1)) is None
        samples = decompose(tracer.all_traces())
        assert samples[END_TO_END] == []


class TestTables:
    def test_breakdown_table_content(self):
        tracer = Tracer()
        for i in range(3):
            build_trace(tracer, "p00", i, base=i * 10_000)
        table = breakdown_table(tracer.completed_traces())
        for label, _, _ in STAGES:
            assert label in table
        assert END_TO_END in table
        # 900 ns e2e == 0.9 us, identical for all three traces.
        assert "0.9" in table

    def test_clock_error_table(self):
        tracer = Tracer()
        build_trace(tracer, "p00", 1, base=1000)
        table = clock_error_table(tracer.all_traces())
        assert tracing.SUBMIT in table
        assert tracing.MATCH in table

    def test_ros_attribution(self):
        tracer = Tracer()
        build_trace(tracer, "p00", 1, base=0, winner="g01", loser="g00")
        build_trace(tracer, "p00", 2, base=10_000, winner="g01", loser="g00")
        build_trace(tracer, "p00", 3, base=20_000, winner="g00", loser="g01")
        attribution = ros_attribution(tracer.completed_traces())
        assert attribution["g01"]["wins"] == 2.0
        assert attribution["g00"]["wins"] == 1.0
        # Winner leads the runner-up by 50 ns = 0.05 us in build_trace.
        assert attribution["g01"]["mean_margin_us"] == 0.05
        table = ros_attribution_table(tracer.completed_traces())
        assert "g01" in table and "66.7%" in table
