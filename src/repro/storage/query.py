"""The historical market-data query API.

Paper §2.1, participant API (3): "query for historical market data
from a long-term cloud storage module" and "Market participants are
provided an API to query historical market data from Bigtable."

Queries are time-range scans within a symbol, built directly on the
row-key design of :mod:`repro.storage.records`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.marketdata import BookSnapshot, TradeRecord
from repro.storage.bigtable import Bigtable, RowRange
from repro.storage.records import (
    BOOK_SNAPSHOT_FAMILY,
    TRADE_FAMILY,
    decode_snapshot_row,
    decode_trade_row,
    time_bound_key,
    time_prefix,
)


class HistoricalDataClient:
    """Read-only client over the market-data table."""

    def __init__(self, table: Bigtable) -> None:
        self.table = table

    def _scan_range(self, kind: str, symbol: str, start_ns: int, end_ns: Optional[int]):
        start_key = time_bound_key(kind, symbol, start_ns)
        if end_ns is None:
            prefix = time_prefix(kind, symbol)
            end_key = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        else:
            end_key = time_bound_key(kind, symbol, end_ns)
        return self.table.scan(RowRange(start=start_key, end=end_key))

    def trades(
        self,
        symbol: str,
        start_ns: int = 0,
        end_ns: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[TradeRecord]:
        """Trades for ``symbol`` with ``start_ns <= executed < end_ns``,
        in execution order."""
        results: List[TradeRecord] = []
        for _, row in self._scan_range(TRADE_FAMILY, symbol, start_ns, end_ns):
            results.append(decode_trade_row(row))
            if limit is not None and len(results) >= limit:
                break
        return results

    def snapshots(
        self,
        symbol: str,
        start_ns: int = 0,
        end_ns: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[BookSnapshot]:
        """Book snapshots for ``symbol`` within the window, in order."""
        results: List[BookSnapshot] = []
        for _, row in self._scan_range(BOOK_SNAPSHOT_FAMILY, symbol, start_ns, end_ns):
            results.append(decode_snapshot_row(row))
            if limit is not None and len(results) >= limit:
                break
        return results

    def volume_traded(self, symbol: str, start_ns: int = 0, end_ns: Optional[int] = None) -> int:
        """Total shares traded in the window."""
        return sum(t.quantity for t in self.trades(symbol, start_ns, end_ns))

    def vwap(self, symbol: str, start_ns: int = 0, end_ns: Optional[int] = None) -> Optional[float]:
        """Volume-weighted average price over the window, or None."""
        trades = self.trades(symbol, start_ns, end_ns)
        total_qty = sum(t.quantity for t in trades)
        if total_qty == 0:
            return None
        return sum(t.price * t.quantity for t in trades) / total_qty

    def __repr__(self) -> str:
        return f"HistoricalDataClient(table={self.table.name!r})"
