"""Declarative sweep grids and their expansion into tasks.

A :class:`SweepSpec` is the unit of experiment description: a list of
grid *points* (each a dict of :class:`~repro.core.config.CloudExConfig`
overrides, plus a few reserved workload keys), crossed with seeds.
:meth:`SweepSpec.expand` turns it into concrete :class:`SweepTask`
items whose seeds depend only on ``(master_seed, point identity,
replicate index)`` -- so re-ordering the grid, adding points, or
changing the worker count never changes any task's trajectory.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.config import CloudExConfig
from repro.sim.rng import derive_seed

#: Point keys consumed by the sweep worker rather than passed to
#: ``CloudExConfig``: the offered rate and per-point measurement
#: windows.  Everything else in a point must be a config field.
RESERVED_KEYS = ("rate_per_participant", "warmup_s", "duration_s")

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(CloudExConfig))


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variation."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _check_point(point: Dict[str, object], where: str) -> None:
    for key, value in point.items():
        if key in RESERVED_KEYS:
            continue
        if key not in _CONFIG_FIELDS:
            raise ValueError(
                f"{where}: {key!r} is not a CloudExConfig field or reserved "
                f"sweep key {RESERVED_KEYS}"
            )
        if key == "seed":
            raise ValueError(
                f"{where}: set seeds via SweepSpec.seeds, not a point override"
            )
        if key == "chaos" and value is not None:
            raise ValueError(
                f"{where}: chaos schedules are not JSON-serializable; sweeps "
                "cover fault-free runs (use repro.chaos scenarios for faults)"
            )


@dataclass(frozen=True)
class SweepTask:
    """One (config point, seed) cell of an expanded sweep."""

    #: Position in the expansion (aggregation order).
    index: int
    #: Stable identity string: the canonical point JSON plus the seed
    #: label.  Cache keys and derived seeds both hang off this.
    key: str
    #: The original grid point (reserved keys included), for labeling.
    point: Dict[str, object]
    #: The resolved config seed for this task.
    seed: int
    #: Full CloudExConfig overrides (base + point + seed).
    overrides: Dict[str, object]
    #: Workload parameters for the measured run.
    rate_per_participant: Optional[float]
    warmup_s: float
    duration_s: float

    def worker_payload(self) -> Dict[str, object]:
        """The JSON-able dict a pool worker needs to execute this task."""
        return {
            "overrides": self.overrides,
            "rate_per_participant": self.rate_per_participant,
            "warmup_s": self.warmup_s,
            "duration_s": self.duration_s,
        }

    def build_config(self) -> CloudExConfig:
        """Materialize (and validate) the task's configuration."""
        return CloudExConfig(**self.overrides)


@dataclass
class SweepSpec:
    """A grid of config points x seeds, ready to expand into tasks.

    Parameters
    ----------
    name:
        Label recorded in the aggregated document.
    grid:
        One dict of overrides per point.  Keys are either
        ``CloudExConfig`` field names or the reserved workload keys
        ``rate_per_participant`` / ``warmup_s`` / ``duration_s``
        (which override the spec-level defaults for that point).
    seeds:
        Either an integer ``N`` -- run each point with ``N`` replicate
        seeds derived from ``(master_seed, point, replicate index)``
        via :func:`repro.sim.rng.derive_seed` -- or an explicit seed
        sequence used verbatim (what the benchmarks need to preserve
        their historical seed-2021 trajectories).
    base:
        Overrides applied to every point (a point wins on conflict).
    """

    name: str
    grid: Sequence[Dict[str, object]]
    seeds: Union[int, Sequence[int]] = 1
    master_seed: int = 0
    warmup_s: float = 0.5
    duration_s: float = 1.0
    rate_per_participant: Optional[float] = None
    base: Dict[str, object] = field(default_factory=dict)

    def seed_labels(self) -> List[str]:
        """One stable label per replicate (independent of seed values)."""
        if isinstance(self.seeds, int):
            if self.seeds < 1:
                raise ValueError(f"seeds must be >= 1, got {self.seeds}")
            return [f"rep{i}" for i in range(self.seeds)]
        return [f"seed{int(s)}" for s in self.seeds]

    def expand(self) -> List[SweepTask]:
        """The full task list, in deterministic grid-major order."""
        if not self.grid:
            raise ValueError("sweep grid is empty")
        _check_point(self.base, "base overrides")
        tasks: List[SweepTask] = []
        derived = isinstance(self.seeds, int)
        seed_values: Sequence[int] = [] if derived else [int(s) for s in self.seeds]
        labels = self.seed_labels()
        for p_index, point in enumerate(self.grid):
            _check_point(point, f"grid point {p_index}")
            merged = dict(self.base)
            merged.update(point)
            rate = merged.pop("rate_per_participant", self.rate_per_participant)
            warmup_s = merged.pop("warmup_s", self.warmup_s)
            duration_s = merged.pop("duration_s", self.duration_s)
            # Identity covers everything that shapes the trajectory
            # except the seed itself, so replicates of one point share
            # a prefix and distinct points never collide.
            point_id = canonical_json(
                {
                    "overrides": merged,
                    "rate": rate,
                    "warmup_s": warmup_s,
                    "duration_s": duration_s,
                }
            )
            for r_index, label in enumerate(labels):
                key = f"{self.name}|{point_id}|{label}"
                if derived:
                    seed = derive_seed(self.master_seed, key)
                else:
                    seed = seed_values[r_index]
                overrides = dict(merged)
                overrides["seed"] = seed
                tasks.append(
                    SweepTask(
                        index=len(tasks),
                        key=key,
                        point=dict(point),
                        seed=seed,
                        overrides=overrides,
                        rate_per_participant=rate,
                        warmup_s=float(warmup_s),
                        duration_s=float(duration_s),
                    )
                )
        return tasks
