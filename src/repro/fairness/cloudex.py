"""The paper's own fairness mechanism, extracted behind the interface.

Inbound: the clock-synced :class:`~repro.core.sequencer.Sequencer`
holding each order for ``d_s`` past its gateway timestamp.  Outbound:
the :class:`~repro.core.holdrelease.HoldReleaseBuffer` releasing each
market-data piece at its engine-prescribed ``t_R = t_M + d_h``.

This backend is the golden-run baseline: it constructs the exact
objects the pre-refactor call sites constructed, with the exact same
arguments, and touches no RNG stream -- so a cluster built with
``fairness_policy="cloudex"`` (the default) is bit-identical to the
pre-refactor wiring.  The golden-run guard tests pin this.
"""

from __future__ import annotations

from repro.core.holdrelease import HoldReleaseBuffer
from repro.core.sequencer import Sequencer
from repro.fairness.base import FairnessPolicy


class CloudExPolicy(FairnessPolicy):
    """Sequencer hold ``d_s`` + H/R buffer ``d_h`` (paper §2.2)."""

    name = "cloudex"

    def build_inbound(
        self, *, sim, clock, on_eligible, config, rngs, shard_id,
        on_sample=None, on_release=None,
    ):
        return Sequencer(
            sim=sim,
            clock=clock,
            on_eligible=on_eligible,
            delay_ns=config.sequencer_delay_ns,
            on_sample=on_sample,
            on_release=on_release,
        )

    def build_outbound(
        self, *, sim, clock, gateway_id, release, report, config, rngs,
        events=None, late_counter=None,
    ):
        return HoldReleaseBuffer(
            sim=sim,
            clock=clock,
            gateway_id=gateway_id,
            release=release,
            report=report,
            events=events,
            late_counter=late_counter,
        )

    def engine_hold_ns(self, config, rngs) -> int:
        return config.holdrelease_delay_ns
