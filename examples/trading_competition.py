#!/usr/bin/env python3
"""A course-deployment-style trading competition (paper §3).

The paper's first deployment ran a 3-hour competition between 13
groups of students, with exchange-operated bots inducing price-time
patterns "on which students could engineer algorithms".  This example
recreates that setting at laptop scale:

- pattern bots drive two symbols along a sine wave and a trend line,
- "student" groups run momentum and market-making strategies,
- the rest of the field trades zero-intelligence noise,
- the final leaderboard marks everyone to market.

Run:  python examples/trading_competition.py
"""

from repro import CloudExCluster, CloudExConfig
from repro.traders import (
    MarketMakerStrategy,
    MomentumStrategy,
    PatternBotStrategy,
    TradingAgent,
    ZeroIntelligenceStrategy,
    sine_target,
    trend_target,
)

SINE_SYMBOL = "SYM000"
TREND_SYMBOL = "SYM001"


def main() -> None:
    config = CloudExConfig(
        seed=13,
        n_participants=12,
        n_gateways=4,
        n_symbols=6,
        subscriptions_per_participant=3,
        sequencer_delay_us=400.0,
        holdrelease_delay_us=1000.0,
        snapshot_interval_ms=50.0,
    )
    cluster = CloudExCluster(config)
    base = config.initial_price

    # Exchange-operated pattern bots (participants 0 and 1).
    strategies = {
        0: PatternBotStrategy(SINE_SYMBOL, sine_target(base, amplitude_ticks=60, period_s=2.0)),
        1: PatternBotStrategy(TREND_SYMBOL, trend_target(base, ticks_per_s=40.0)),
        # Student groups: momentum traders hunting the patterns.
        2: MomentumStrategy([SINE_SYMBOL, TREND_SYMBOL], window=6, threshold_ticks=3, quantity=20),
        3: MomentumStrategy([TREND_SYMBOL], window=4, threshold_ticks=2, quantity=30),
        # A market-making group earning the spread.
        4: MarketMakerStrategy([SINE_SYMBOL, TREND_SYMBOL], base, half_spread_ticks=4, quantity=40),
    }
    agents = []
    for index, participant in enumerate(cluster.participants):
        strategy = strategies.get(
            index,
            ZeroIntelligenceStrategy(
                [SINE_SYMBOL, TREND_SYMBOL, "SYM002"], fallback_price=base
            ),
        )
        agent = TradingAgent(
            cluster.sim,
            participant,
            strategy,
            rate_per_s=120.0,
            rng=cluster.rngs.stream(f"competition:{participant.name}"),
        )
        agent.start()
        agents.append(agent)

    print("Running the competition (6 simulated seconds)...")
    cluster.run(duration_s=6.0)

    last_sine = cluster.exchange.shards[0].core.last_trade_price.get(SINE_SYMBOL)
    last_trend = cluster.exchange.shards[0].core.last_trade_price.get(TREND_SYMBOL)
    print(f"\n{SINE_SYMBOL} last trade: {last_sine/100:.2f} (sine around {base/100:.2f})")
    print(f"{TREND_SYMBOL} last trade: {last_trend/100:.2f} (trending up from {base/100:.2f})")

    roles = {0: "sine bot", 1: "trend bot", 2: "momentum A", 3: "momentum B", 4: "market maker"}
    print("\nFinal leaderboard (mark-to-market):")
    start_cash = config.initial_cash
    for rank, (name, value) in enumerate(cluster.leaderboard(), start=1):
        if name == "operator":
            continue
        index = int(name[1:])
        role = roles.get(index, "zero-intelligence")
        pnl = value - start_cash
        print(f"  {rank:2d}. {name}  {role:18s} PnL ${pnl/100:+,.2f}")

    m = cluster.metrics
    print(
        f"\n{m.orders_matched:.0f} orders, {m.trades_executed:.0f} trades, "
        f"inbound unfairness {m.inbound_unfairness_ratio():.2%}, "
        f"outbound unfairness {m.outbound_unfairness_ratio():.2%}"
    )


if __name__ == "__main__":
    main()
