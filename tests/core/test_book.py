"""Tests for the limit order book."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.book import LimitOrderBook, PriceLevel
from repro.core.order import Order
from repro.core.types import OrderType, Side


def order(coid, side, price, qty=10, ts=None, participant="p", seq=None):
    return Order(
        client_order_id=coid,
        participant_id=participant,
        symbol="S",
        side=side,
        order_type=OrderType.LIMIT,
        quantity=qty,
        limit_price=price,
        gateway_id="g",
        gateway_timestamp=ts if ts is not None else coid,
        gateway_seq=seq if seq is not None else coid,
    )


@pytest.fixture
def book():
    return LimitOrderBook("S")


class TestBestPrices:
    def test_empty_book(self, book):
        assert book.best_bid() is None
        assert book.best_ask() is None
        assert book.spread() is None

    def test_best_bid_is_highest(self, book):
        for coid, price in enumerate([100, 105, 95]):
            book.add_resting(order(coid, Side.BUY, price))
        assert book.best_bid() == 105

    def test_best_ask_is_lowest(self, book):
        for coid, price in enumerate([110, 108, 115]):
            book.add_resting(order(coid, Side.SELL, price))
        assert book.best_ask() == 108

    def test_spread(self, book):
        book.add_resting(order(1, Side.BUY, 100))
        book.add_resting(order(2, Side.SELL, 103))
        assert book.spread() == 3


class TestCrosses:
    def test_limit_buy_crosses_at_or_above_ask(self, book):
        book.add_resting(order(1, Side.SELL, 100))
        assert book.crosses(Side.BUY, 100)
        assert book.crosses(Side.BUY, 101)
        assert not book.crosses(Side.BUY, 99)

    def test_limit_sell_crosses_at_or_below_bid(self, book):
        book.add_resting(order(1, Side.BUY, 100))
        assert book.crosses(Side.SELL, 100)
        assert book.crosses(Side.SELL, 99)
        assert not book.crosses(Side.SELL, 101)

    def test_market_crosses_nonempty_opposite(self, book):
        assert not book.crosses(Side.BUY, None)
        book.add_resting(order(1, Side.SELL, 100))
        assert book.crosses(Side.BUY, None)


class TestTimestampPriority:
    def test_fifo_within_level_by_timestamp(self, book):
        book.add_resting(order(1, Side.BUY, 100, ts=50))
        book.add_resting(order(2, Side.BUY, 100, ts=30))  # earlier stamp, later arrival
        level = book.bids.best_level()
        assert [o.client_order_id for o in level.orders] == [2, 1]

    def test_equal_timestamps_break_by_seq(self, book):
        book.add_resting(order(1, Side.BUY, 100, ts=10, seq=2))
        book.add_resting(order(2, Side.BUY, 100, ts=10, seq=1))
        level = book.bids.best_level()
        assert [o.client_order_id for o in level.orders] == [2, 1]

    def test_unstamped_order_rejected(self, book):
        bare = order(1, Side.BUY, 100)
        bare.gateway_timestamp = None
        with pytest.raises(ValueError):
            book.add_resting(bare)


class TestCancel:
    def test_cancel_removes_order(self, book):
        book.add_resting(order(1, Side.BUY, 100))
        cancelled = book.cancel("p", 1)
        assert cancelled.client_order_id == 1
        assert book.best_bid() is None
        assert book.resting_count() == 0

    def test_cancel_unknown_returns_none(self, book):
        assert book.cancel("p", 99) is None

    def test_cancel_middle_of_level(self, book):
        for coid in (1, 2, 3):
            book.add_resting(order(coid, Side.BUY, 100))
        book.cancel("p", 2)
        level = book.bids.best_level()
        assert [o.client_order_id for o in level.orders] == [1, 3]
        assert level.total_quantity == 20

    def test_cancel_then_best_falls_back(self, book):
        book.add_resting(order(1, Side.BUY, 105))
        book.add_resting(order(2, Side.BUY, 100))
        book.cancel("p", 1)
        assert book.best_bid() == 100

    def test_duplicate_resting_key_rejected(self, book):
        book.add_resting(order(1, Side.BUY, 100))
        with pytest.raises(ValueError):
            book.add_resting(order(1, Side.BUY, 101))

    def test_is_resting(self, book):
        book.add_resting(order(1, Side.BUY, 100))
        assert book.is_resting("p", 1)
        assert not book.is_resting("p", 2)


class TestDepth:
    def test_depth_snapshot_ordering(self, book):
        for coid, price in enumerate([100, 99, 98]):
            book.add_resting(order(coid, Side.BUY, price, qty=10))
        for coid, price in enumerate([101, 102, 103], start=10):
            book.add_resting(order(coid, Side.SELL, price, qty=5))
        bids, asks = book.depth_snapshot(max_levels=2)
        assert bids == ((100, 10), (99, 10))
        assert asks == ((101, 5), (102, 5))

    def test_depth_aggregates_level_volume(self, book):
        book.add_resting(order(1, Side.BUY, 100, qty=10))
        book.add_resting(order(2, Side.BUY, 100, qty=15))
        bids, _ = book.depth_snapshot()
        assert bids == ((100, 25),)

    def test_side_volume_and_count(self, book):
        book.add_resting(order(1, Side.BUY, 100, qty=10))
        book.add_resting(order(2, Side.BUY, 99, qty=20))
        assert book.bids.total_volume() == 30
        assert book.bids.order_count() == 2


class TestPriceLevel:
    def test_pop_front_updates_quantity(self):
        level = PriceLevel(100)
        level.add(order(1, Side.BUY, 100, qty=10))
        level.add(order(2, Side.BUY, 100, qty=20))
        popped = level.pop_front()
        assert popped.client_order_id == 1
        assert level.total_quantity == 20

    def test_reduce_accounts_partial_fill(self):
        level = PriceLevel(100)
        level.add(order(1, Side.BUY, 100, qty=10))
        level.reduce(4)
        assert level.total_quantity == 6


@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([Side.BUY, Side.SELL]),
            st.integers(90, 110),  # price
            st.integers(1, 50),  # qty
            st.integers(0, 1000),  # timestamp
        ),
        min_size=1,
        max_size=60,
    ),
    cancel_indices=st.sets(st.integers(0, 59)),
)
@settings(max_examples=200, deadline=None)
def test_book_invariants(entries, cancel_indices):
    """Resting volume, counts, and priority ordering stay consistent
    under arbitrary add/cancel sequences (non-crossing adds)."""
    book = LimitOrderBook("S")
    alive = {}
    for coid, (side, price, qty, ts) in enumerate(entries):
        # Keep the book from crossing: bids below 100, asks at or above.
        price = min(price, 99) if side is Side.BUY else max(price, 100)
        book.add_resting(order(coid, side, price, qty=qty, ts=ts))
        alive[coid] = (side, price, qty, ts)
    for index in cancel_indices:
        if index in alive:
            assert book.cancel("p", index) is not None
            del alive[index]

    assert book.resting_count() == len(alive)
    expected_bid_volume = sum(q for s, _, q, _ in alive.values() if s is Side.BUY)
    assert book.bids.total_volume() == expected_bid_volume

    bids, asks = book.depth_snapshot(max_levels=100)
    assert list(bids) == sorted(bids, key=lambda lv: -lv[0])
    assert list(asks) == sorted(asks, key=lambda lv: lv[0])

    # Within each level, orders are sorted by (timestamp, gateway, seq).
    for side_obj in (book.bids, book.asks):
        for level in side_obj._levels.values():
            keys = [o.priority_key() for o in level.orders]
            assert keys == sorted(keys)
