"""``python -m repro sweep``: the experiment harness CLI.

Composes a :class:`~repro.exp.spec.SweepSpec` from ``--grid`` axes
(cross product), runs it through the parallel pool, prints the result
table, and optionally writes the deterministic aggregated JSON.

Examples
--------
Table 1's shard-scaling grid, three replicate seeds, four workers::

    python -m repro sweep --grid n_shards=1,2,4 --seeds 3 --jobs 4 \
        --set n_participants=48 --set n_gateways=16 --set n_symbols=100 \
        --warmup 0.5 --duration 1.0 --json table1.json

The JSON is byte-identical for any ``--jobs`` value; re-running an
unchanged sweep answers entirely from ``.repro-cache/``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Dict, List, Tuple

from repro.cliutil import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, emit_json
from repro.exp.cache import DEFAULT_CACHE_DIR, DEFAULT_MAX_BYTES
from repro.exp.runner import run_sweep, sweep_table
from repro.exp.spec import SweepSpec


def _parse_value(text: str) -> object:
    """Interpret a CLI value: JSON literal if it parses, else string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_axis(spec: str) -> Tuple[str, List[object]]:
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"expected field=v1,v2,... got {spec!r}"
        )
    field, _, values = spec.partition("=")
    return field.strip(), [_parse_value(v) for v in values.split(",")]


def _parse_setting(spec: str) -> Tuple[str, object]:
    if "=" not in spec:
        raise argparse.ArgumentTypeError(f"expected field=value, got {spec!r}")
    field, _, value = spec.partition("=")
    return field.strip(), _parse_value(value)


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=(
            "Run a (config x seed) experiment sweep over a parallel worker "
            "pool with deterministic aggregation and on-disk result caching."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__.split("Examples\n--------\n", 1)[1],
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis (repeatable; axes combine as a cross product)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="base",
        metavar="FIELD=VALUE",
        help="base config override applied to every point (repeatable)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="replicate seeds per point, derived from --master-seed (default 1)",
    )
    parser.add_argument(
        "--seed-list",
        default=None,
        metavar="S1,S2,...",
        help="explicit config seeds used verbatim (overrides --seeds)",
    )
    parser.add_argument("--master-seed", type=int, default=0)
    parser.add_argument("--name", default="sweep", help="label recorded in the JSON")
    parser.add_argument("--warmup", type=float, default=0.5, metavar="SECONDS")
    parser.add_argument("--duration", type=float, default=1.0, metavar="SECONDS")
    parser.add_argument(
        "--rate", type=float, default=None, help="orders/s per participant"
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout (jobs > 1 only)",
    )
    parser.add_argument("--retries", type=int, default=1, help="extra attempts per failed task")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the aggregated document as JSON ('-' for stdout)",
    )
    parser.add_argument("--no-cache", action="store_true", help="ignore and don't write .repro-cache/")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--cache-max-mb",
        type=int,
        default=DEFAULT_MAX_BYTES // (1024 * 1024),
        metavar="MB",
        help="size bound for the result cache; oldest entries are evicted (default 512)",
    )
    parser.add_argument(
        "--columns",
        default="throughput_per_s,submission_p50_us,submission_p99_us",
        help="result-payload keys shown in the printed table",
    )
    return parser


def sweep_main(argv=None) -> int:
    args = build_sweep_parser().parse_args(argv)
    if not args.grid:
        print("error: at least one --grid axis is required", file=sys.stderr)
        return EXIT_USAGE

    axes = [_parse_axis(spec) for spec in args.grid]
    grid: List[Dict[str, object]] = [
        dict(zip((name for name, _ in axes), combo))
        for combo in itertools.product(*(values for _, values in axes))
    ]
    base = dict(_parse_setting(spec) for spec in args.base)
    if args.seed_list is not None:
        seeds = [int(s) for s in args.seed_list.split(",")]
    else:
        seeds = args.seeds

    spec = SweepSpec(
        name=args.name,
        grid=grid,
        seeds=seeds,
        master_seed=args.master_seed,
        warmup_s=args.warmup,
        duration_s=args.duration,
        rate_per_participant=args.rate,
        base=base,
    )
    outcome = run_sweep(
        spec,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_mb * 1024 * 1024,
        timeout_s=args.timeout,
        retries=args.retries,
    )

    columns = [c.strip() for c in args.columns.split(",") if c.strip()]
    print(sweep_table(outcome.document, columns=columns))
    print(
        f"\ntasks: {outcome.executed} executed, {outcome.from_cache} cached, "
        f"{len(outcome.failures)} failed; jobs={args.jobs}; "
        f"wall {outcome.wall_s:.1f}s",
        file=sys.stderr,
    )
    for key, error in outcome.failures:
        print(f"\nFAILED {key}\n{error}", file=sys.stderr)

    if args.json is not None:
        emit_json(outcome.document, args.json)
        if args.json != "-":
            print(f"wrote {args.json}", file=sys.stderr)
    return EXIT_OK if outcome.ok else EXIT_FAILURE
