"""Strategy interface and the Poisson order-flow driver."""

from __future__ import annotations

import numpy as np

from repro.core.participant import Participant
from repro.sim.engine import Simulator
from repro.sim.timeunits import SECOND


class Strategy:
    """Base class for trading strategies.

    A strategy is attached to a :class:`~repro.core.participant.Participant`
    and driven from two directions: the participant forwards exchange
    events (confirmations, trades, market data), and a
    :class:`TradingAgent` calls :meth:`on_order_opportunity` at Poisson
    times to generate outbound flow.
    """

    def on_start(self, participant: Participant) -> None:
        """Called once before trading begins (subscribe, seed state)."""

    def on_order_opportunity(self, participant: Participant, rng: np.random.Generator) -> None:
        """Called at each order-arrival instant; place orders here."""

    def on_market_data(self, participant: Participant, delivery) -> None:
        """Called on every released market-data delivery."""

    def on_confirmation(self, participant: Participant, confirmation) -> None:
        """Called on every order confirmation."""

    def on_trade(self, participant: Participant, trade_confirmation) -> None:
        """Called on every trade confirmation (a fill on our order)."""


class PoissonArrivalStream:
    """Chunked bulk generation of a merged Poisson arrival process.

    The vectorized counterpart of :meth:`TradingAgent._next_gap`: one
    stream models the merged order flow of many participants at an
    aggregate ``rate_per_s``, drawing exponential gaps in fixed-size
    chunks (the BufferedStream idea scaled from per-draw RNG to whole
    message batches) and serving strictly increasing integer-ns arrival
    times.  Gaps are clamped to >= 1 ns like the scalar agent's.

    Chunking is part of the determinism contract of the batched kernel:
    the draw sequence depends only on ``(rate, chunk)`` -- never on how
    callers slice simulated time across :meth:`take_until` calls -- so
    a windowed sharded run consumes this stream identically no matter
    where the conservative-sync window boundaries fall.

    ``field_factory(n)``, when given, is called once per chunk to draw
    ``n`` rows of per-arrival payload columns; the arrays are sliced
    along with the arrival times, keeping every payload draw aligned to
    the same chunk boundaries (and therefore equally window-invariant).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate_per_s: float,
        start_ns: int = 0,
        chunk: int = 4096,
        field_factory=None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.rng = rng
        self.rate_per_s = rate_per_s
        self.chunk = chunk
        self.field_factory = field_factory
        self._scale = SECOND / rate_per_s
        self._last_ns = start_ns
        self._times = np.empty(0, dtype=np.int64)
        self._fields = None
        self._pos = 0
        self.generated = 0

    def _refill(self) -> None:
        gaps = np.maximum(1, self.rng.exponential(self._scale, size=self.chunk).astype(np.int64))
        self._times = np.cumsum(gaps) + self._last_ns
        self._last_ns = int(self._times[-1])
        if self.field_factory is not None:
            self._fields = self.field_factory(self.chunk)
        self._pos = 0
        self.generated += self.chunk

    def take_until(self, t_end_ns: int):
        """All arrivals strictly before ``t_end_ns`` not yet taken.

        Returns ``times`` (int64 array) or ``(times, fields)`` when a
        ``field_factory`` is attached.  Consecutive calls with
        increasing horizons tile the stream without gaps or overlaps.
        """
        times_out = []
        fields_out = []
        while True:
            if self._pos >= len(self._times):
                self._refill()
            rest = self._times[self._pos :]
            idx = int(np.searchsorted(rest, t_end_ns, side="left"))
            if idx == 0:
                break
            taken = slice(self._pos, self._pos + idx)
            times_out.append(self._times[taken])
            if self._fields is not None:
                fields_out.append({key: col[taken] for key, col in self._fields.items()})
            self._pos += idx
            if self._pos < len(self._times):
                break
        times = (
            np.concatenate(times_out) if times_out else np.empty(0, dtype=np.int64)
        )
        if self.field_factory is None:
            return times
        if fields_out:
            fields = {
                key: np.concatenate([chunk[key] for chunk in fields_out])
                for key in fields_out[0]
            }
        else:
            fields = {key: col[:0] for key, col in (self._fields or {}).items()}
        return times, fields


class TradingAgent:
    """Drives one participant's strategy with Poisson order arrivals.

    Inter-opportunity gaps are exponential with mean ``1/rate``, the
    standard order-flow model and what "each market participant
    submits around 450 orders/s on average" (paper §4) implies.
    """

    def __init__(
        self,
        sim: Simulator,
        participant: Participant,
        strategy: Strategy,
        rate_per_s: float,
        rng: np.random.Generator,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"order rate must be positive, got {rate_per_s}")
        self.sim = sim
        self.participant = participant
        self.strategy = strategy
        self.rate_per_s = rate_per_s
        self.rng = rng
        self.opportunities = 0
        self._running = False
        participant.strategy = strategy

    def start(self, delay_ns: int = 0) -> None:
        """Begin generating flow after ``delay_ns``."""
        if self._running:
            return
        self._running = True
        self.strategy.on_start(self.participant)
        self.sim.schedule(delay_ns + self._next_gap(), self._tick)

    def stop(self) -> None:
        """Stop after the currently scheduled opportunity."""
        self._running = False

    def _next_gap(self) -> int:
        return max(1, int(self.rng.exponential(SECOND / self.rate_per_s)))

    def _tick(self) -> None:
        if not self._running:
            return
        self.opportunities += 1
        self.strategy.on_order_opportunity(self.participant, self.rng)
        self.sim.schedule(self._next_gap(), self._tick)

    def __repr__(self) -> str:
        return (
            f"TradingAgent({self.participant.name!r}, rate={self.rate_per_s}/s, "
            f"opportunities={self.opportunities})"
        )
