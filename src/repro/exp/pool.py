"""A crash-tolerant multiprocessing pool for sweep tasks.

Each task runs in its own worker process with a dedicated result pipe
-- deliberately *not* a shared queue, so a worker dying mid-write
(segfault, OOM kill, ``terminate()`` on timeout) can corrupt nothing
shared and surfaces as a plain EOF on its own pipe.  The parent keeps
at most ``jobs`` workers in flight, re-queues a crashed or timed-out
task up to ``retries`` extra attempts, and reports it failed after
that instead of sinking the sweep.

``jobs=1`` executes inline in the calling process: zero fork overhead,
and the baseline that parallel runs must reproduce byte-for-byte
(workers compute pure functions of their task, so they do).  Per-task
timeouts are only enforced for subprocess execution -- the inline path
has no one to interrupt it.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from time import monotonic
from typing import Any, Callable, List, Optional, Sequence


@dataclass
class TaskResult:
    """What happened to one task: a value, or why there isn't one."""

    ok: bool
    value: Any = None
    error: str = ""
    attempts: int = 1
    timed_out: bool = False


@dataclass
class _InFlight:
    index: int
    attempt: int
    process: Any
    deadline: Optional[float] = field(default=None)


def _mp_context():
    """Prefer fork (cheap, no pickling of the worker fn); fall back to
    spawn on platforms without it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _child_main(conn, worker: Callable[[Any], Any], item: Any) -> None:
    try:
        value = worker(item)
        conn.send(("ok", value))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass  # parent sees EOF and treats it as a crash
    finally:
        conn.close()


def run_parallel(
    worker: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
) -> List[TaskResult]:
    """Run ``worker(item)`` for every item; results align with items.

    ``worker`` must be a module-level callable (it crosses a process
    boundary when ``jobs > 1``).  Item order in the result list is
    item order in the input, regardless of completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if jobs == 1:
        results = []
        for item in items:
            try:
                results.append(TaskResult(ok=True, value=worker(item)))
            except Exception:
                results.append(TaskResult(ok=False, error=traceback.format_exc()))
        return results

    ctx = _mp_context()
    results: List[Optional[TaskResult]] = [None] * len(items)
    pending = deque((i, 0) for i in range(len(items)))
    running = {}  # parent conn -> _InFlight

    def finish(flight: _InFlight, result: TaskResult) -> None:
        result.attempts = flight.attempt + 1
        if result.ok or flight.attempt >= retries:
            results[flight.index] = result
        else:
            pending.append((flight.index, flight.attempt + 1))

    while pending or running:
        while pending and len(running) < jobs:
            index, attempt = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_child_main, args=(child_conn, worker, items[index]), daemon=True
            )
            process.start()
            # Close our copy of the write end immediately: a worker
            # death must read as EOF, and later forks must not inherit
            # this pipe's write end and keep it alive.
            child_conn.close()
            deadline = monotonic() + timeout_s if timeout_s is not None else None
            running[parent_conn] = _InFlight(index, attempt, process, deadline)

        poll: Optional[float] = None
        if timeout_s is not None:
            now = monotonic()
            poll = max(
                0.0,
                min(f.deadline for f in running.values() if f.deadline is not None) - now,
            )
        ready = connection_wait(list(running), timeout=poll)

        for conn in ready:
            flight = running.pop(conn)
            try:
                status, payload = conn.recv()
            except Exception:  # EOF/unpicklable payload = worker crash
                status, payload = (
                    "err",
                    f"worker crashed without a result (exit code "
                    f"{flight.process.exitcode})",
                )
            conn.close()
            flight.process.join()
            if status == "ok":
                finish(flight, TaskResult(ok=True, value=payload))
            else:
                finish(flight, TaskResult(ok=False, error=payload))

        if timeout_s is not None:
            now = monotonic()
            for conn, flight in list(running.items()):
                if flight.deadline is not None and now >= flight.deadline:
                    running.pop(conn)
                    conn.close()
                    flight.process.terminate()
                    flight.process.join()
                    finish(
                        flight,
                        TaskResult(
                            ok=False,
                            error=f"timed out after {timeout_s}s",
                            timed_out=True,
                        ),
                    )

    return results  # type: ignore[return-value]
