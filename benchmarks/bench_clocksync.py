"""Reproduce §4 'Clock Synchronization'.

Paper numbers:
- Huygens: 99th-percentile clock offsets average ~159 ns over a 3-hour
  run.
- NTP: ~10 ms offsets between gateways, unusable for sequencing.
- Without the inbound resequencing mechanism (free-running clocks),
  the inbound unfairness ratio is 24.6%; with clock synchronization,
  even a static d_s = 0 achieves 8.4%.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale, emit, paper_testbed_config, run_measured
from repro.clocksync.ntp import NtpEstimator
from repro.clocksync.service import ClockSyncService
from repro.sim.engine import Simulator
from repro.sim.latency import GammaLatency, cloud_link
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.timeunits import MILLISECOND, SECOND


def _sync_testbed(estimator=None, path_override=None):
    """One reference plus 16 gateway clocks over calibrated cloud links."""
    sim = Simulator()
    rngs = RngRegistry(2021)
    network = Network(sim, rngs)
    reference = network.add_host("engine")
    clients = []
    clock_rng = rngs.stream("bench:clocks")
    for i in range(16):
        client = network.add_host(
            f"g{i:02d}",
            drift_ppb=int(clock_rng.integers(-50_000, 50_001)),
            offset_ns=int(clock_rng.integers(-5_000_000, 5_000_001)),
        )
        network.connect_bidirectional("engine", client.name, cloud_link(178, 0.7, 92.0, 0.006, 5))
        clients.append(client)
    service = ClockSyncService(
        sim,
        network,
        reference,
        clients,
        rngs,
        estimator=estimator,
        path_override=path_override,
        use_coded_filter=False,
    )
    return sim, service


def test_clock_offset_percentiles(benchmark):
    """Huygens vs NTP residual offsets (paper: ~159 ns vs ~10 ms)."""

    def run():
        duration = int(20 * SECOND * bench_scale())
        sim, huygens = _sync_testbed()
        huygens.warm_start(3)
        huygens.start()
        sim.run(until=duration)
        huygens_p99 = huygens.error_percentile_ns(99)
        huygens_p50 = huygens.error_percentile_ns(50)

        sim2, ntp = _sync_testbed(
            estimator=NtpEstimator(),
            path_override=(
                GammaLatency(2 * MILLISECOND, 2.0, 2 * MILLISECOND),
                GammaLatency(2 * MILLISECOND, 2.0, 12 * MILLISECOND),
            ),
        )
        ntp.warm_start(2)
        ntp.start()
        sim2.run(until=duration)
        ntp_p99 = ntp.error_percentile_ns(99)
        ntp_p50 = ntp.error_percentile_ns(50)
        return huygens_p50, huygens_p99, ntp_p50, ntp_p99

    h50, h99, n50, n99 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "§4 Clock synchronization: residual clock offsets (16 gateways)",
        ["sync", "p50", "p99", "paper p99"],
        [
            ["huygens", f"{h50:.0f} ns", f"{h99:.0f} ns", "~159 ns"],
            ["ntp", f"{n50/1e6:.1f} ms", f"{n99/1e6:.1f} ms", "~10 ms"],
        ],
    )
    assert h99 < 2_000  # nanosecond regime
    assert n99 > 1_000_000  # millisecond regime


def test_unfairness_with_and_without_sync(benchmark):
    """Inbound unfairness at static d_s = 0 (paper: 24.6% -> 8.4%)."""

    def run():
        results = {}
        for mode in ("none", "huygens"):
            cluster = run_measured(
                paper_testbed_config(clock_sync=mode, sequencer_delay_us=0.0),
                warmup_s=0.3,
                measure_s=1.0,
            )
            results[mode] = (
                cluster.metrics.inbound_unfairness_ratio(),
                cluster.metrics.inbound_unfairness_ratio_true(),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "§4 Inbound unfairness at static d_s = 0",
        ["clocks", "measured", "ground truth", "paper"],
        [
            [
                "free-running (no resequencing basis)",
                f"{results['none'][0]:.1%}",
                f"{results['none'][1]:.1%}",
                "24.6%",
            ],
            [
                "huygens-synchronized",
                f"{results['huygens'][0]:.1%}",
                f"{results['huygens'][1]:.1%}",
                "8.4%",
            ],
        ],
    )
    # Shape: synchronization cuts true unfairness by a large factor.
    assert results["none"][1] > 2 * results["huygens"][1]
