"""Retry/recovery integration: ack timeouts x ROS dedup TTL.

Satellite for the chaos PR: a delayed confirmation makes the participant
retry; the engine's deduplicator must absorb the replica.  With a sane
TTL the retry is deduplicated and the stored confirmation is replayed.
With a pathologically short TTL the winner's entry is swept before the
retry arrives, the replica is re-admitted, and the new
duplicate-execution invariant checker is what catches it.
"""

from repro.chaos import (
    ChaosMonitor,
    FaultSchedule,
    LinkDegradation,
    check_invariants,
)
from repro.core.cluster import CloudExCluster
from repro.core.config import CloudExConfig
from repro.core.types import Side
from repro.sim.timeunits import MILLISECOND


def _run(ttl_s):
    # Confirmations from the engine back to the gateway crawl (+150 ms),
    # so the participant's 50 ms ack timeout fires and it retries.
    # Ingress stays healthy: the engine executes the first copy promptly.
    schedule = FaultSchedule((
        LinkDegradation("engine", "g00", at_s=0.0, duration_s=0.3, extra_us=150_000.0),
    ))
    config = CloudExConfig(
        seed=3,
        n_participants=1,
        n_gateways=1,
        n_symbols=2,
        subscriptions_per_participant=1,
        sequencer_delay_us=500.0,
        spike_prob=0.0,
        persist_trades=False,
        clock_sync="perfect",
        ack_timeout_ms=50.0,
        ack_retry_backoff=1.0,
        ack_max_retries=5,
        ros_dedup_ttl_s=ttl_s,
        chaos=schedule,
    )
    cluster = CloudExCluster(config)
    monitor = ChaosMonitor(cluster)
    participant = cluster.participants[0]
    # A buy at the initial price rests below the seeded ask: the order
    # executes (is admitted and acknowledged) without trading, so a
    # double admission corrupts nothing *except* the dedup invariant.
    cluster.sim.schedule(
        10 * MILLISECOND,
        participant.submit_limit,
        config.symbols[0],
        Side.BUY,
        10,
        config.initial_price,
    )
    cluster.run(duration_s=0.6)
    return cluster, monitor, participant


class TestSaneTtl:
    """Default-order TTL (5 s): retries are absorbed and replayed."""

    def test_retry_deduplicated_and_confirmation_replayed(self):
        cluster, monitor, participant = _run(ttl_s=5.0)
        assert participant.retries_sent >= 1
        assert cluster.counters.snapshot()["ros.confirmations_replayed"] >= 1
        # Exactly one admission despite the replicas.
        assert list(monitor.admits.values()) == [1]
        assert participant.confirmations_received >= 1
        assert participant.orders_abandoned == 0
        assert check_invariants(cluster, monitor) == []


class TestShortTtl:
    """TTL shorter than the retry delay: the swept entry lets the
    replica through, and the invariant checker reports it."""

    def test_double_execution_caught_by_checker(self):
        cluster, monitor, participant = _run(ttl_s=0.04)
        assert participant.retries_sent >= 1
        findings = check_invariants(cluster, monitor)
        duplicates = [f for f in findings if f.invariant == "duplicate_execution"]
        assert len(duplicates) == 1
        assert duplicates[0].data["admits"] >= 2
        # The resting order crossed nothing, so every *other* invariant
        # still holds -- the dedup checker is the only witness.
        assert [f.invariant for f in findings] == ["duplicate_execution"]
