"""``python -m repro bench``: micro/macro suites and baseline checking.

Schema (both files)
-------------------
::

    {
      "suite": "micro" | "macro",
      "quick": bool,               # quick (CI smoke) or full workloads
      "jobs": int,                 # worker processes (1 = inline; the
                                   #   committed baselines are jobs=1)
      "calibration_s": float,      # median of the per-bench calibrations
                                   #   (null when jobs > 1: each worker
                                   #   calibrates itself)
      "benches": {
        "<name>": {
          "wall_s": float,         # best-of-repeats wall time
          "calibration_s": float,  # calibration measured just before
                                   #   this bench, in the same process
          "normalized": float,     # wall_s / calibration_s  (machine-free)
          "work": {...}            # deterministic outputs: event counts,
        }                          #   orders matched, simulated throughput
      }
    }

Two kinds of fields, two kinds of guarantees:

* ``work`` is **deterministic**: produced by fixed seeds inside the
  simulation, it must be bit-identical on every machine and every run.
  A drift here is a determinism regression, not noise.
* ``wall_s`` is machine-dependent, so comparisons use ``normalized`` =
  wall time divided by the wall time of a fixed pure-Python
  *calibration loop* measured immediately before each bench in the
  same process.  Machine speed cancels out, which is what makes a
  committed baseline meaningful on a different CI runner; calibrating
  per bench (rather than once per suite) also cancels speed *drift*
  across a run — CPU-steal spells on virtualized hardware slow the
  adjacent calibration by the same factor as the bench itself.

``--check`` re-runs the suites and fails when any bench's normalized
time regresses by more than ``--tolerance`` (default 25%) against the
committed baseline; being *faster* never fails.  Deterministic
mismatches always fail.
"""

from __future__ import annotations

import argparse
import heapq
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.cliutil import EXIT_FAILURE, EXIT_OK

MICRO_BASELINE = "BENCH_micro.json"
MACRO_BASELINE = "BENCH_macro.json"
DEFAULT_TOLERANCE = 0.25

# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------


def calibrate(repeats: int = 3) -> float:
    """Wall time of a fixed pure-Python workload (best of ``repeats``).

    The loop mirrors what the simulator actually spends its time on --
    heap churn, attribute access, integer arithmetic -- so the
    normalized bench values are roughly 'multiples of basic interpreter
    work' and transfer across machines and Python builds.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        heap: List[Tuple[int, int]] = []
        push, pop = heapq.heappush, heapq.heappop
        acc = 0
        for i in range(120_000):
            push(heap, ((i * 2_654_435_761) & 0xFFFFF, i))
            if i & 1:
                acc += pop(heap)[0]
        while heap:
            acc += pop(heap)[0]
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        assert acc != 0
    return best


def _time_bench(fn: Callable[[], dict], repeats: int) -> Tuple[float, dict]:
    """Best-of-``repeats`` wall time; asserts the deterministic work is
    identical across repeats (catching accidental cross-run state)."""
    best = float("inf")
    work: Optional[dict] = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if work is None:
            work = result
        elif work != result:
            raise AssertionError(f"non-deterministic bench work: {work} != {result}")
        if elapsed < best:
            best = elapsed
    assert work is not None
    return best, work


# ----------------------------------------------------------------------
# Micro suite
# ----------------------------------------------------------------------


def _make_orders(n: int, crossing: bool, seed: int = 7):
    import numpy as np

    from repro.core.order import Order
    from repro.core.types import OrderType, Side

    rng = np.random.default_rng(seed)
    orders = []
    for i in range(n):
        side = Side.BUY if rng.random() < 0.5 else Side.SELL
        if crossing:
            price = 10_000 + int(rng.integers(-5, 6))
        elif side is Side.BUY:
            price = 9_990 - int(rng.integers(0, 25))
        else:
            price = 10_010 + int(rng.integers(0, 25))
        orders.append(
            Order(
                client_order_id=i + 1,
                participant_id=f"p{i % 8}",
                symbol="S",
                side=side,
                order_type=OrderType.LIMIT,
                quantity=int(rng.integers(1, 100)),
                limit_price=price,
                gateway_id="g",
                gateway_timestamp=i,
                gateway_seq=i,
            )
        )
    return orders


def _bench_book_add_cancel(n: int) -> dict:
    from repro.core.book import LimitOrderBook

    orders = _make_orders(n, crossing=False)
    book = LimitOrderBook("S")
    for order in orders:
        book.add_resting(order)
    for order in orders:
        book.cancel(order.participant_id, order.client_order_id)
        order.remaining = order.quantity
    return {"orders": n, "resting_after": book.resting_count()}


def _bench_matching_crossing(n: int) -> dict:
    from repro.core.matching import MatchingEngineCore
    from repro.core.portfolio import PortfolioMatrix

    orders = _make_orders(n, crossing=True)
    portfolio = PortfolioMatrix(default_cash=10**12)
    for i in range(8):
        portfolio.open_account(f"p{i}")
    core = MatchingEngineCore(["S"], portfolio)
    trades = 0
    for order in orders:
        order.remaining = order.quantity
        trades += len(core.process_order(order, now_local=0).trades)
    return {"orders": n, "trades": trades}


def _bench_depth_snapshots(n: int) -> dict:
    from repro.core.book import LimitOrderBook

    orders = _make_orders(n, crossing=False)
    book = LimitOrderBook("S")
    checksum = 0
    for i, order in enumerate(orders):
        book.add_resting(order)
        bids, asks = book.depth_snapshot(max_levels=10)
        checksum = (checksum * 31 + len(bids) + 7 * len(asks) + i) % 1_000_000_007
        if i % 3 == 0:
            book.cancel(order.participant_id, order.client_order_id)
            order.remaining = order.quantity
    return {"orders": n, "checksum": checksum}


def _bench_engine_dispatch(n: int) -> dict:
    from repro.sim.engine import Simulator

    sim = Simulator()

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(10, tick, remaining - 1)

    # Four interleaved chains: the heap always holds a few entries, as
    # in a real run, instead of degenerating to a single-element heap.
    for lane in range(4):
        sim.schedule(lane, tick, n // 4)
    sim.run()
    return {"events": sim.events_processed, "now": sim.now}


def _bench_sequencer(n: int) -> dict:
    from repro.core.sequencer import Sequencer
    from repro.sim.clock import HostClock
    from repro.sim.engine import Simulator

    sim = Simulator()
    clock = HostClock(sim)
    seq = Sequencer(sim, clock, on_eligible=lambda: None, delay_ns=0)
    for i in range(n):
        seq.enqueue(((i * 17) % 997, "g", i), i, i)
    sim.schedule(1_000, lambda: None)
    sim.run()
    drained = 0
    while seq.pop_eligible() is not None:
        drained += 1
    return {"enqueued": n, "drained": drained}


def _bench_clock_now(n: int) -> dict:
    from repro.sim.clock import HostClock
    from repro.sim.engine import Simulator

    sim = Simulator()
    clock = HostClock(sim, drift_ppb=42_000, offset_ns=1_500_000)
    clock.set_linear_correction(1_200, 37_000, clock.raw_local())
    total = 0
    for i in range(n):
        sim.now = i * 1_000
        total += clock.now()
    sim.now = 0
    return {"reads": n, "total": total}


#: name -> (bench fn, base size).  Quick mode multiplies sizes by 3,
#: full mode by 10 -- sizes keep each bench comfortably above ~30 ms
#: even in quick mode: much shorter and scheduler noise approaches the
#: --check tolerance.
_MICRO_BENCHES: Dict[str, Tuple[Callable[[int], dict], int]] = {
    "book_add_cancel": (_bench_book_add_cancel, 2_000),
    "matching_crossing": (_bench_matching_crossing, 2_000),
    "depth_snapshots": (_bench_depth_snapshots, 1_000),
    "engine_dispatch": (_bench_engine_dispatch, 20_000),
    "sequencer": (_bench_sequencer, 5_000),
    "clock_now": (_bench_clock_now, 50_000),
}


def _micro_worker(item: Tuple[str, bool, int]) -> Tuple[str, dict]:
    """Pool worker: one micro bench, calibrated in its own process.

    Each worker runs the calibration loop itself, so its normalized
    value is measured under the same CPU contention as the bench --
    that is what keeps parallel runs roughly comparable, though the
    committed baselines stay jobs=1 where contention is zero.
    """
    name, quick, repeats = item
    fn, base = _MICRO_BENCHES[name]
    size = base * (3 if quick else 10)
    calibration = calibrate()
    wall, work = _time_bench(lambda: fn(size), repeats)
    return name, {
        "wall_s": wall,
        "calibration_s": calibration,
        "normalized": wall / calibration,
        "work": work,
    }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def run_micro_suite(quick: bool, repeats: int = 3, jobs: int = 1) -> dict:
    """Run every micro bench; returns the baseline document (sans file)."""
    scale = 3 if quick else 10
    doc = {"suite": "micro", "quick": quick, "jobs": jobs, "benches": {}}
    if jobs == 1:
        for name, (fn, base) in _MICRO_BENCHES.items():
            size = base * scale
            calibration = calibrate()
            wall, work = _time_bench(lambda: fn(size), repeats)
            doc["benches"][name] = {
                "wall_s": wall,
                "calibration_s": calibration,
                "normalized": wall / calibration,
                "work": work,
            }
        doc["calibration_s"] = _median(
            [entry["calibration_s"] for entry in doc["benches"].values()]
        )
        return doc
    from repro.exp.pool import run_parallel

    items = [(name, quick, repeats) for name in _MICRO_BENCHES]
    doc["calibration_s"] = None  # per-worker; see _micro_worker
    for result in run_parallel(_micro_worker, items, jobs=jobs, retries=0):
        if not result.ok:
            raise RuntimeError(f"micro bench worker failed:\n{result.error}")
        name, entry = result.value
        doc["benches"][name] = entry
    return doc


# ----------------------------------------------------------------------
# Macro suite: the Table-1 sharding workload
# ----------------------------------------------------------------------


def _testbed_config(n_shards: int):
    """The §4 testbed at saturation load, as in
    ``benchmarks/bench_table1_sharding.py`` (kept in sync by
    ``tests/perf/test_bench.py``): 48 participants, 16 gateways, 100
    symbols, overload rate, no cancels."""
    from repro.core.config import CloudExConfig

    return CloudExConfig(
        seed=2021,
        n_participants=48,
        n_gateways=16,
        n_symbols=100,
        n_shards=n_shards,
        orders_per_participant_per_s=450.0,
        subscriptions_per_participant=2,
        snapshot_interval_ms=100.0,
        market_order_fraction=0.05,
        cancel_fraction=0.0,
    )


def _run_macro_once(n_shards: int, duration_s: float) -> Tuple[float, dict]:
    from repro.core.cluster import CloudExCluster

    config = _testbed_config(n_shards)
    cluster = CloudExCluster(config)
    cluster.add_default_workload(rate_per_participant=1_700.0)
    start = time.perf_counter()
    cluster.run(duration_s=duration_s)
    wall = time.perf_counter() - start
    work = {
        "shards": n_shards,
        "sim_duration_s": duration_s,
        "events_processed": cluster.sim.events_processed,
        "throughput_per_s": round(cluster.metrics.throughput_per_s(), 3),
    }
    return wall, work


def _macro_point(shards: int, duration_s: float, repeats: int) -> Tuple[float, dict]:
    """Best-of-``repeats`` wall time for one shard count, with the
    cross-repeat determinism assertion."""
    best_wall: float = float("inf")
    work: Optional[dict] = None
    for _ in range(max(1, repeats)):
        wall, this_work = _run_macro_once(shards, duration_s)
        if work is None:
            work = this_work
        elif work != this_work:
            raise AssertionError(
                f"non-deterministic macro run at {shards} shards: {work} != {this_work}"
            )
        if wall < best_wall:
            best_wall = wall
    assert work is not None
    return best_wall, work


def _macro_worker(item: Tuple[int, float, int]) -> Tuple[int, dict]:
    """Pool worker: one shard count, calibrated in its own process
    (same contention rationale as :func:`_micro_worker`)."""
    shards, duration_s, repeats = item
    calibration = calibrate()
    wall, work = _macro_point(shards, duration_s, repeats)
    return shards, {
        "wall_s": wall,
        "calibration_s": calibration,
        "normalized": wall / calibration,
        "work": work,
    }


def _shardrun_configs(quick: bool) -> "Dict[str, object]":
    """The batched-kernel macro points.

    ``shardrun_table1`` mirrors the Table-1 testbed economics (48
    participants, 100 symbols, 4 shards, saturation rate) so its
    wall-clock divides against the scalar ``table1_shards_4`` point --
    that ratio is the suite's ``batched_speedup``.  ``shardrun_1m`` is
    the scale demonstrator: a million participants over 10 symbols,
    unreachable for the event-driven cluster, routine for the batched
    kernel.
    """
    from repro.core.shardrun import ShardRunConfig

    return {
        "shardrun_table1": ShardRunConfig(
            seed=2021,
            n_participants=48,
            n_symbols=100,
            n_shards=4,
            rate_per_participant_s=1_700.0,
            duration_s=0.15 if quick else 0.6,
            market_order_fraction=0.05,
        ),
        "shardrun_1m": ShardRunConfig(
            seed=2021,
            duration_s=0.1 if quick else 2.0,  # defaults: 1M participants, 10 symbols
        ),
    }


def _shardrun_point(config) -> Tuple[float, dict]:
    """One batched-kernel run; work fields are fully deterministic."""
    from repro.core.shardrun import run_shardrun

    start = time.perf_counter()
    report = run_shardrun(config, jobs=1)
    wall = time.perf_counter() - start
    totals = report["totals"]
    work = {
        "participants": config.n_participants,
        "shards": config.n_shards,
        "sim_duration_s": config.duration_s,
        "orders": totals["orders"],
        "trades": totals["trades"],
    }
    return wall, work


def _batched_speedup(benches: dict) -> Optional[float]:
    """Orders-per-wall-second ratio: batched kernel vs scalar cluster
    on the shared Table-1 economics.  The scalar side's order rate is
    reconstructed from its simulated throughput and wall time."""
    scalar = benches.get("table1_shards_4")
    batched = benches.get("shardrun_table1")
    if scalar is None or batched is None:
        return None
    scalar_orders_per_wall = (
        scalar["work"]["throughput_per_s"] * scalar["work"]["sim_duration_s"] / scalar["wall_s"]
    )
    batched_orders_per_wall = batched["work"]["orders"] / batched["wall_s"]
    return round(batched_orders_per_wall / scalar_orders_per_wall, 2)


def run_macro_suite(quick: bool, repeats: int = 1, jobs: int = 1) -> dict:
    shard_counts = (1, 4) if quick else (1, 4, 8)
    duration_s = 0.15 if quick else 0.6
    doc = {"suite": "macro", "quick": quick, "jobs": jobs, "benches": {}}
    if jobs == 1:
        for shards in shard_counts:
            calibration = calibrate()
            wall, work = _macro_point(shards, duration_s, repeats)
            doc["benches"][f"table1_shards_{shards}"] = {
                "wall_s": wall,
                "calibration_s": calibration,
                "normalized": wall / calibration,
                "work": work,
            }
    else:
        from repro.exp.pool import run_parallel

        items = [(shards, duration_s, repeats) for shards in shard_counts]
        for result in run_parallel(_macro_worker, items, jobs=jobs, retries=0):
            if not result.ok:
                raise RuntimeError(f"macro bench worker failed:\n{result.error}")
            shards, entry = result.value
            doc["benches"][f"table1_shards_{shards}"] = entry
    # The batched-kernel points always run inline: they are cheap, and
    # their wall times feed the speedup ratio, which wants zero
    # cross-process contention.
    for name, config in _shardrun_configs(quick).items():
        calibration = calibrate()
        wall, work = _shardrun_point(config)
        doc["benches"][name] = {
            "wall_s": wall,
            "calibration_s": calibration,
            "normalized": wall / calibration,
            "work": work,
        }
    doc["calibration_s"] = (
        _median([entry["calibration_s"] for entry in doc["benches"].values()])
        if jobs == 1
        else None  # scalar points calibrated per worker; see _macro_worker
    )
    speedup = _batched_speedup(doc["benches"])
    if speedup is not None:
        doc["batched_speedup"] = speedup
    return doc


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------


def check_against_baseline(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Compare a fresh run against a committed baseline.

    Returns a list of human-readable failure strings (empty == pass):

    * normalized wall time regressed by more than ``tolerance``
      (improvements never fail);
    * deterministic ``work`` fields differ (a determinism regression);
    * quick/full mode mismatch (the workloads aren't comparable).
    """
    failures: List[str] = []
    if current.get("quick") != baseline.get("quick"):
        return [
            f"mode mismatch: baseline quick={baseline.get('quick')} vs "
            f"current quick={current.get('quick')}; regenerate the baseline"
        ]
    if current.get("jobs", 1) != baseline.get("jobs", 1):
        return [
            f"jobs mismatch: baseline jobs={baseline.get('jobs', 1)} vs "
            f"current jobs={current.get('jobs', 1)}; wall-clock comparisons "
            "are only meaningful at equal parallelism"
        ]
    for name, entry in current.get("benches", {}).items():
        base = baseline.get("benches", {}).get(name)
        if base is None:
            continue  # new bench: nothing to regress against
        if entry["work"] != base["work"]:
            failures.append(
                f"{name}: deterministic work drifted: baseline {base['work']} "
                f"vs current {entry['work']}"
            )
        limit = base["normalized"] * (1.0 + tolerance)
        if entry["normalized"] > limit:
            slower = entry["normalized"] / base["normalized"] - 1.0
            failures.append(
                f"{name}: normalized wall time regressed {slower:+.1%} "
                f"({base['normalized']:.2f} -> {entry['normalized']:.2f}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Run the micro/macro performance suites and write (or check "
            "against) the BENCH_micro.json / BENCH_macro.json baselines."
        ),
    )
    parser.add_argument(
        "--suite",
        choices=["micro", "macro", "all"],
        default="all",
        help="which suite(s) to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workloads, fewer shard counts",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare against the committed baselines instead of "
            "overwriting them; exit 1 on >tolerance regression or "
            "deterministic drift"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="allowed normalized-wall-time regression for --check (default: 0.25)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="micro-bench repetitions; best-of is recorded (default: 3)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory holding BENCH_*.json (default: current directory)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "run benches through the repro.exp worker pool (each worker "
            "calibrates itself); the default 1 runs inline, which is what "
            "the committed baselines and --check assume"
        ),
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "also emit the combined suite document as JSON in the shared "
            "--json shape (no PATH = stdout)"
        ),
    )
    return parser


def _print_suite(doc: dict) -> None:
    calibration = (
        f"calibration {doc['calibration_s'] * 1e3:.1f} ms"
        if doc.get("calibration_s") is not None
        else f"per-worker calibration, jobs={doc.get('jobs')}"
    )
    print(f"{doc['suite']} suite ({'quick' if doc['quick'] else 'full'}), {calibration}")
    width = max(len(name) for name in doc["benches"])
    for name, entry in doc["benches"].items():
        detail = ", ".join(f"{k}={v}" for k, v in entry["work"].items())
        print(
            f"  {name:<{width}}  {entry['wall_s'] * 1e3:9.1f} ms  "
            f"x{entry['normalized']:8.2f}  [{detail}]"
        )
    if doc.get("batched_speedup") is not None:
        print(
            f"  batched kernel vs scalar cluster (Table-1 economics): "
            f"{doc['batched_speedup']:.1f}x orders/wall-second"
        )


def bench_main(argv=None) -> int:
    args = build_bench_parser().parse_args(argv)
    out_dir = Path(args.out_dir)
    suites = []
    if args.suite in ("micro", "all"):
        suites.append(
            (MICRO_BASELINE, run_micro_suite(args.quick, repeats=args.repeats, jobs=args.jobs))
        )
    if args.suite in ("macro", "all"):
        suites.append((MACRO_BASELINE, run_macro_suite(args.quick, jobs=args.jobs)))

    failures: List[str] = []
    for filename, doc in suites:
        _print_suite(doc)
        path = out_dir / filename
        if args.check:
            if not path.exists():
                failures.append(f"{filename}: no committed baseline at {path}")
                continue
            baseline = json.loads(path.read_text())
            suite_failures = check_against_baseline(doc, baseline, args.tolerance)
            if suite_failures:
                failures.extend(f"{filename}: {msg}" for msg in suite_failures)
            else:
                print(f"  OK vs {path} (tolerance {args.tolerance:.0%})")
        else:
            out_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
            print(f"  wrote {path}")
    if args.json is not None:
        from repro.cliutil import emit_json

        emit_json(
            {
                "bench": args.suite,
                "quick": args.quick,
                "suites": {doc["suite"]: doc for _, doc in suites},
            },
            args.json,
        )
    if failures:
        print("\nBENCH CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return EXIT_FAILURE
    return EXIT_OK
