"""Command-line demo: ``python -m repro``.

Runs a small CloudEx deployment with the default zero-intelligence
workload and prints the operator report.  Flags tune the interesting
knobs; see ``python -m repro --help``.

``python -m repro trace`` runs the same deployment with per-order
lifecycle tracing enabled and prints the latency breakdown, clock
error, ROS attribution, and operational-counter tables, writing the
raw traces to a JSONL file; see ``python -m repro trace --help``.

``python -m repro chaos`` runs a deterministic fault-injection
scenario (gateway crashes, latency storms, partitions, clock steps)
and prints the chaos report with its invariant findings; see
``python -m repro chaos --help``.

``python -m repro bench`` runs the micro/macro performance suites and
writes (or, with ``--check``, compares against) the persistent
``BENCH_micro.json`` / ``BENCH_macro.json`` baselines; see
``python -m repro bench --help``.

``python -m repro sweep`` runs a (config x seed) experiment grid over
a parallel worker pool with deterministic aggregation and on-disk
result caching; see ``python -m repro sweep --help``.

``python -m repro fairness`` runs the fairness-policy frontier study:
the cloudex/dbo/pfo/noop backends head-to-head across clock regimes
and chaos scenarios under identical seeds, emitting a deterministic
frontier document; see ``python -m repro fairness --help``.

``python -m repro shardrun`` runs the batched sharded kernel: bulk
numpy order generation, batched matching, and conservative-sync
windows across optional worker processes whose reports are
byte-identical to the inline run; see ``python -m repro shardrun
--help``.

``python -m repro serve`` runs the exchange-as-a-service control
plane: an authenticated HTTP API that accepts sweep/chaos/bench job
submissions, executes them on the experiment pool, and serves signed
evidence packs; see ``python -m repro serve --help``.

``python -m repro verify-pack`` verifies a downloaded evidence pack
offline; see ``python -m repro verify-pack --help``.

All subcommands share the exit-code convention in :mod:`repro.cliutil`
(0 = clean, 1 = the run surfaced failures, 2 = usage error) and emit
``--json`` documents in the same canonical shape.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import summarize_run
from repro.cliutil import EXIT_OK, emit_json
from repro.core.cluster import CloudExCluster
from repro.core.config import CloudExConfig

#: Every subcommand, in help order.  ``python -m repro --help`` lists
#: exactly these; the CLI test suite pins the list.
SUBCOMMANDS = ("trace", "chaos", "bench", "sweep", "fairness", "shardrun", "serve", "verify-pack")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a simulated CloudEx fair-access exchange and print a report.",
        epilog=(
            "subcommands:\n"
            "  trace        run with per-order lifecycle tracing and print the\n"
            "               latency/clock/ROS breakdown tables\n"
            "  chaos        run a deterministic fault-injection scenario and\n"
            "               print the invariant-checked chaos report\n"
            "  bench        run the micro/macro performance suites and write or\n"
            "               check the BENCH_*.json baselines\n"
            "  sweep        run a (config x seed) experiment grid over a parallel\n"
            "               worker pool with caching and deterministic output\n"
            "  fairness     run the fairness-policy frontier study (cloudex vs\n"
            "               dbo vs pfo vs noop under identical seeds and chaos)\n"
            "  shardrun     run the batched sharded kernel (bulk-generated flow,\n"
            "               conservative-sync windows, optional --jobs processes\n"
            "               with byte-identical reports)\n"
            "  serve        run the exchange-as-a-service HTTP control plane:\n"
            "               submit sweep/chaos/bench jobs, download signed\n"
            "               evidence packs\n"
            "  verify-pack  verify a downloaded evidence pack offline\n"
            "\n"
            "see `python -m repro <subcommand> --help` for their options"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--participants", type=int, default=12)
    parser.add_argument("--gateways", type=int, default=4)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--symbols", type=int, default=20)
    parser.add_argument("--duration", type=float, default=2.0, metavar="SECONDS")
    parser.add_argument("--rate", type=float, default=200.0, help="orders/s per participant")
    parser.add_argument("--rf", type=int, default=1, help="ROS replication factor")
    parser.add_argument("--ds", type=float, default=500.0, help="sequencer delay d_s (us)")
    parser.add_argument("--dh", type=float, default=1000.0, help="hold/release delay d_h (us)")
    parser.add_argument(
        "--ddp",
        type=float,
        default=None,
        metavar="TARGET",
        help="enable DDP with this target unfairness ratio (e.g. 0.01)",
    )
    parser.add_argument(
        "--clock-sync",
        choices=["huygens", "ntp", "none", "perfect"],
        default="huygens",
    )
    parser.add_argument(
        "--matching",
        choices=["continuous", "batch"],
        default="continuous",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run a traced CloudEx deployment and print the per-stage "
            "latency breakdown, clock-error, and ROS-attribution tables."
        ),
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--participants", type=int, default=4)
    parser.add_argument("--gateways", type=int, default=2)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--symbols", type=int, default=4)
    parser.add_argument("--duration", type=float, default=0.5, metavar="SECONDS")
    parser.add_argument("--rate", type=float, default=100.0, help="orders/s per participant")
    parser.add_argument("--rf", type=int, default=2, help="ROS replication factor")
    parser.add_argument("--sample-rate", type=float, default=1.0, help="trace sampling rate in [0, 1]")
    parser.add_argument("--out", default="trace.jsonl", metavar="PATH", help="JSONL trace output path")
    parser.add_argument(
        "--clock-sync",
        choices=["huygens", "ntp", "none", "perfect"],
        default="huygens",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="also write a deterministic trace-summary document as JSON (no PATH = stdout)",
    )
    return parser


def trace_main(argv=None) -> int:
    from repro.obs.breakdown import breakdown_table, clock_error_table, ros_attribution_table

    args = build_trace_parser().parse_args(argv)
    config = CloudExConfig(
        seed=args.seed,
        n_participants=args.participants,
        n_gateways=args.gateways,
        n_shards=args.shards,
        n_symbols=args.symbols,
        replication_factor=args.rf,
        clock_sync=args.clock_sync,
        orders_per_participant_per_s=args.rate,
        subscriptions_per_participant=min(3, args.symbols),
        tracing=True,
        trace_sample_rate=args.sample_rate,
    )
    cluster = CloudExCluster(config)
    cluster.add_default_workload()
    cluster.run(duration_s=args.duration)

    tracer = cluster.tracer
    assert tracer is not None
    traces = tracer.all_traces()
    completed = tracer.completed_traces()
    print(f"traces: {len(traces)} sampled, {len(completed)} completed\n")
    print("Latency breakdown (true time; stages telescope to end_to_end)")
    print(breakdown_table(completed))
    print("\nClock error by span (synced clock vs. true time)")
    print(clock_error_table(traces))
    print("\nROS critical-path attribution")
    print(ros_attribution_table(completed))
    print("\nOperational counters")
    print(cluster.counters.as_table())
    if cluster.profiler is not None:
        print("\nEvent-loop dispatch profile")
        print(cluster.profiler.as_table())
    emitted = {s.name: c for s, c in cluster.events.counts_by_severity.items() if c}
    if emitted:
        summary = ", ".join(f"{name}={count}" for name, count in sorted(emitted.items()))
        print(f"\nevent log: {summary} (dropped={cluster.events.dropped})")
    tracer.dump_jsonl(args.out)
    print(f"\nwrote {len(traces)} traces to {args.out}")
    if args.json is not None:
        spans_by_kind: dict = {}
        for trace in traces:
            for span in trace.spans:
                spans_by_kind[span.kind] = spans_by_kind.get(span.kind, 0) + 1
        emit_json(
            {
                "trace": {"seed": args.seed, "duration_s": args.duration},
                "traces": len(traces),
                "completed": len(completed),
                "spans_by_kind": spans_by_kind,
                "counters": cluster.counters.snapshot(),
            },
            args.json,
        )
    return EXIT_OK


def build_chaos_parser() -> argparse.ArgumentParser:
    from repro.chaos import available_scenarios

    scenario_lines = "\n".join(
        f"  {name:28s}{description}" for name, description in available_scenarios()
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run a deterministic fault-injection scenario against a CloudEx "
            "cluster and print the invariant-checked chaos report."
        ),
        epilog=f"scenarios:\n{scenario_lines}",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scenario",
        default="smoke",
        metavar="NAME",
        help="scenario to run (see list below; default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the report as JSON instead of text (no PATH = stdout)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any invariant was violated",
    )
    return parser


def chaos_main(argv=None) -> int:
    from repro.chaos import available_scenarios, run_scenario
    from repro.cliutil import EXIT_FAILURE

    args = build_chaos_parser().parse_args(argv)
    if args.list:
        for name, description in available_scenarios():
            print(f"{name:28s}{description}")
        return EXIT_OK
    result = run_scenario(args.scenario, seed=args.seed)
    report = result.report
    if args.json is not None:
        emit_json(report.to_dict(), args.json)
    else:
        print(report.as_text())
    if args.strict and not report.ok:
        return EXIT_FAILURE
    return EXIT_OK


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        name, rest = argv[0], argv[1:]
        if name == "trace":
            return trace_main(rest)
        if name == "chaos":
            return chaos_main(rest)
        if name == "bench":
            from repro.perf.bench import bench_main

            return bench_main(rest)
        if name == "sweep":
            from repro.exp.cli import sweep_main

            return sweep_main(rest)
        if name == "fairness":
            from repro.fairness.cli import fairness_main

            return fairness_main(rest)
        if name == "shardrun":
            from repro.core.shardrun import shardrun_main

            return shardrun_main(rest)
        if name == "serve":
            from repro.serve.cli import serve_main

            return serve_main(rest)
        from repro.serve.cli import verify_pack_main

        return verify_pack_main(rest)
    args = build_parser().parse_args(argv)
    config = CloudExConfig(
        seed=args.seed,
        n_participants=args.participants,
        n_gateways=args.gateways,
        n_shards=args.shards,
        n_symbols=args.symbols,
        replication_factor=args.rf,
        sequencer_delay_us=args.ds,
        holdrelease_delay_us=args.dh,
        ddp_inbound_target=args.ddp,
        ddp_outbound_target=args.ddp,
        clock_sync=args.clock_sync,
        matching_mode=args.matching,
        orders_per_participant_per_s=args.rate,
        subscriptions_per_participant=min(3, args.symbols),
    )
    cluster = CloudExCluster(config)
    cluster.add_default_workload()
    cluster.run(duration_s=args.duration)
    print(summarize_run(cluster))
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
