"""Analysis helpers: statistics, rendering, reports, and market analytics."""

from repro.analysis.bookview import render_book
from repro.analysis.candles import Candle, candles_from_trades
from repro.analysis.report import summarize_run
from repro.analysis.stats import describe_ns, percentile, trimmed_mean
from repro.analysis.tables import format_table, render_series

__all__ = [
    "Candle",
    "candles_from_trades",
    "describe_ns",
    "format_table",
    "percentile",
    "render_book",
    "render_series",
    "summarize_run",
    "trimmed_mean",
]
