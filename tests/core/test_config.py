"""Tests for configuration validation and derived values."""

import pytest

from repro.core.config import CloudExConfig, default_symbols
from repro.sim.timeunits import MICROSECOND, MILLISECOND, SECOND


class TestDefaults:
    def test_paper_testbed_shape(self):
        config = CloudExConfig()
        assert config.n_participants == 48
        assert config.n_gateways == 16
        assert config.n_symbols == 100
        assert config.aggregate_order_rate == pytest.approx(48 * 450.0)

    def test_symbols_generated(self):
        config = CloudExConfig(n_symbols=5)
        assert config.symbols == ["SYM000", "SYM001", "SYM002", "SYM003", "SYM004"]

    def test_explicit_symbols_override_count(self):
        config = CloudExConfig(symbols=["AAA", "BBB"], subscriptions_per_participant=2)
        assert config.n_symbols == 2


class TestDerived:
    def test_ns_conversions(self):
        config = CloudExConfig(sequencer_delay_us=250.0, holdrelease_delay_us=800.0)
        assert config.sequencer_delay_ns == 250 * MICROSECOND
        assert config.holdrelease_delay_ns == 800 * MICROSECOND
        assert config.ddp_step_ns == 5 * MICROSECOND
        assert config.snapshot_interval_ns == 100 * MILLISECOND
        assert config.injected_phase_ns == 6 * SECOND


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_participants": 0},
            {"n_gateways": 0},
            {"n_shards": 0},
            {"n_shards": 20, "n_symbols": 10},
            {"replication_factor": 0},
            {"replication_factor": 17},
            {"straggler_gateways": 17},
            {"clock_sync": "chrony"},
            {"sequencer_delay_us": -1.0},
            {"subscriptions_per_participant": 101},
            {"market_order_fraction": 1.5},
            {"cancel_fraction": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            CloudExConfig(**overrides)

    def test_with_overrides_returns_validated_copy(self):
        config = CloudExConfig()
        other = config.with_overrides(n_shards=4)
        assert other.n_shards == 4
        assert config.n_shards == 1
        with pytest.raises(ValueError):
            config.with_overrides(n_shards=0)


class TestDefaultSymbols:
    def test_count(self):
        assert len(default_symbols(100)) == 100

    def test_unique(self):
        symbols = default_symbols(250)
        assert len(set(symbols)) == 250

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            default_symbols(0)
