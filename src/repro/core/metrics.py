"""Central metrics collection.

The collector is a simulation-level observer with access to ground
truth (true times), so it can compute everything the paper reports:

- **submission latency**: participant submit -> matching engine
  receives the (winning replica of the) order (Table 1, Fig. 6a).
- **end-to-end latency**: participant submit -> participant receives
  the order confirmation (Table 1).
- **inbound unfairness ratio** and **queuing delay** from sequencer
  samples (Figs. 4a/5a).
- **outbound unfairness ratio** and **releasing delay** from gateway
  H/R reports (Figs. 4b/5b): a piece is unfairly disseminated iff >= 1
  gateway received it after its release time.
- **throughput**: orders processed by the matching engine per second.

Components push events in; nothing here feeds back into the exchange
(DDP consumes its own sample streams inside the exchange server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.sequencer import SequencerSample
from repro.sim.timeunits import MICROSECOND, SECOND


def percentile_us(samples_ns: List[int], percentile: float) -> float:
    """Percentile of a latency list, reported in microseconds.

    Empty sample lists yield the explicit empty sentinel 0.0 (matching
    :meth:`LatencySummary.from_ns`'s ``count=0`` summary) so reports on
    short runs render instead of crashing.
    """
    if not samples_ns:
        return 0.0
    return float(np.percentile(np.asarray(samples_ns, dtype=np.float64), percentile)) / MICROSECOND


@dataclass
class LatencySummary:
    """p50/p99/p99.9 in microseconds, as the paper tabulates."""

    count: int
    p50_us: float
    p99_us: float
    p999_us: float
    mean_us: float

    @property
    def is_empty(self) -> bool:
        """True for the no-samples sentinel (all fields zero)."""
        return self.count == 0

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The explicit empty-summary sentinel."""
        return cls(count=0, p50_us=0.0, p99_us=0.0, p999_us=0.0, mean_us=0.0)

    @classmethod
    def from_ns(cls, samples_ns: List[int]) -> "LatencySummary":
        array = np.asarray(samples_ns, dtype=np.float64)
        if array.size == 0:
            return cls.empty()
        return cls(
            count=int(array.size),
            p50_us=float(np.percentile(array, 50)) / MICROSECOND,
            p99_us=float(np.percentile(array, 99)) / MICROSECOND,
            p999_us=float(np.percentile(array, 99.9)) / MICROSECOND,
            mean_us=float(array.mean()) / MICROSECOND,
        )


@dataclass
class _MdPieceState:
    """Aggregation of one market-data piece across gateways."""

    expected_reports: int
    reports: int = 0
    any_late: bool = False
    hold_ns_total: int = 0


class MetricsCollector:
    """Sink for everything measurable about one cluster run."""

    def __init__(self) -> None:
        # (participant, client_order_id) -> timestamps (true time).
        self._submitted: Dict[Tuple[str, int], int] = {}
        self.submission_latencies_ns: List[int] = []
        self.e2e_latencies_ns: List[int] = []
        # participant -> (count, sum of submission latencies): the
        # cross-participant symmetry view of "fair access".
        self._submission_by_participant: Dict[str, Tuple[int, int]] = {}
        # Sequencer aggregates (summed over shards).
        self.orders_released: int = 0
        self.out_of_sequence: int = 0
        self.out_of_sequence_true: int = 0
        self.queuing_delays_ns: List[int] = []
        # Market data.
        self._md: Dict[int, _MdPieceState] = {}
        self.md_pieces_finalized: int = 0
        self.md_pieces_unfair: int = 0
        # Pieces finalized with fewer reports than the fan-out (a
        # gateway flushed its H/R buffer, or the run ended first), and
        # pieces finalized with no reports at all (no fairness
        # information; excluded from the unfairness ratio).
        self.md_pieces_partial: int = 0
        self.md_pieces_unreported: int = 0
        self.releasing_delays_ns: List[int] = []
        self.md_lateness_ns: List[int] = []
        # Engine throughput accounting.
        self.orders_matched: int = 0
        self.trades_executed: int = 0
        self.replicas_received: int = 0
        self.duplicates_dropped: int = 0
        self.rejects: int = 0
        # Window for throughput (set by the cluster runner).
        self.measure_start_true: int = 0
        self.measure_end_true: int = 0
        # Optional repro.obs.counters.MetricsRegistry supplying
        # operational counts (message loss) to summary().
        self._counters = None

    def attach_counters(self, registry) -> None:
        """Expose a counter registry's operational counts in summary()."""
        self._counters = registry

    def messages_dropped(self) -> int:
        """Messages dropped at downed hosts (0 without a registry)."""
        if self._counters is None:
            return 0
        return int(self._counters.value("net.dropped_while_down"))

    def reset_window(self, now_true: int) -> None:
        """Start a fresh measurement window at ``now_true``.

        Zeroes all aggregates and sample lists while keeping in-flight
        tracking (submitted orders awaiting receipt/confirmation,
        partially-reported market-data pieces), so benchmarks can run
        a warm-up period and then measure steady state.
        """
        self.submission_latencies_ns.clear()
        self.e2e_latencies_ns.clear()
        self._submission_by_participant.clear()
        self.orders_released = 0
        self.out_of_sequence = 0
        self.out_of_sequence_true = 0
        self.queuing_delays_ns.clear()
        self.md_pieces_finalized = 0
        self.md_pieces_unfair = 0
        self.md_pieces_partial = 0
        self.md_pieces_unreported = 0
        self.releasing_delays_ns.clear()
        self.md_lateness_ns.clear()
        self.orders_matched = 0
        self.trades_executed = 0
        self.replicas_received = 0
        self.duplicates_dropped = 0
        self.rejects = 0
        self.measure_start_true = now_true
        self.measure_end_true = now_true

    # ------------------------------------------------------------------
    # Order lifecycle
    # ------------------------------------------------------------------
    def record_submission(self, participant: str, client_order_id: int, now_true: int) -> None:
        self._submitted[(participant, client_order_id)] = now_true

    def record_engine_receipt(
        self, participant: str, client_order_id: int, now_true: int
    ) -> None:
        """The winning replica finished engine ingress processing."""
        submitted = self._submitted.get((participant, client_order_id))
        if submitted is not None:
            latency = now_true - submitted
            self.submission_latencies_ns.append(latency)
            count, total = self._submission_by_participant.get(participant, (0, 0))
            self._submission_by_participant[participant] = (count + 1, total + latency)

    def record_confirmation(
        self, participant: str, client_order_id: int, now_true: int
    ) -> None:
        """The participant received the order confirmation.

        Only the *first* confirmation of an order counts toward the
        end-to-end latency -- later confirmations for the same id
        (e.g. the cancellation of a long-resting order) are lifecycle
        events, not submission round-trips.  Popping also bounds the
        tracking table's memory.
        """
        submitted = self._submitted.pop((participant, client_order_id), None)
        if submitted is not None:
            self.e2e_latencies_ns.append(now_true - submitted)

    def unconfirmed_orders(self) -> List[Tuple[str, int]]:
        """Orders submitted but never confirmed, as (participant, id).

        The entries still in the submission-tracking table are exactly
        the orders whose first confirmation never arrived -- the chaos
        invariant checker starts its order-loss accounting here.
        """
        return list(self._submitted.keys())

    # ------------------------------------------------------------------
    # Sequencer
    # ------------------------------------------------------------------
    def record_sequencer_sample(self, sample: SequencerSample) -> None:
        self.orders_released += 1
        if sample.out_of_sequence:
            self.out_of_sequence += 1
        if sample.out_of_sequence_true:
            self.out_of_sequence_true += 1
        self.queuing_delays_ns.append(sample.queuing_delay_ns)

    # ------------------------------------------------------------------
    # Market data
    # ------------------------------------------------------------------
    def register_md_piece(self, seq: int, expected_reports: int) -> None:
        """The engine disseminated piece ``seq`` to N gateways."""
        self._md[seq] = _MdPieceState(expected_reports=expected_reports)

    def record_md_report(
        self, seq: int, late: bool, lateness_ns: int, hold_ns: int
    ) -> Optional[bool]:
        """Record one gateway's report.

        Returns the piece's unfair flag once all expected gateways have
        reported (None before then) -- the engine feeds that finalized
        per-piece sample to the outbound DDP controller.
        """
        state = self._md.get(seq)
        if state is None:
            return None
        state.reports += 1
        state.hold_ns_total += hold_ns
        self.releasing_delays_ns.append(hold_ns)
        if late:
            state.any_late = True
            self.md_lateness_ns.append(lateness_ns)
        if state.reports >= state.expected_reports:
            self.md_pieces_finalized += 1
            if state.any_late:
                self.md_pieces_unfair += 1
            del self._md[seq]
            return state.any_late
        return None

    def _finalize_partial(self, seq: int, state: _MdPieceState) -> Optional[bool]:
        """Close out a piece that will never see its full fan-out.

        Returns the unfair flag when the piece carried >= 1 report (a
        valid, if partial, fairness sample), None when it carried none
        (no information -- counted separately, never fed to DDP).
        """
        del self._md[seq]
        if state.reports == 0:
            self.md_pieces_unreported += 1
            return None
        self.md_pieces_partial += 1
        if state.any_late:
            self.md_pieces_unfair += 1
        return state.any_late

    def record_md_flush(self, seqs: List[int]) -> List[bool]:
        """One gateway flushed its H/R buffer (crash/rejoin): each held
        piece loses one expected report.  Pieces whose remaining
        reports are already all in are finalized as *partial*; the
        returned unfair flags feed the outbound DDP controller, which
        would otherwise starve for the rest of the run.
        """
        finalized: List[bool] = []
        for seq in seqs:
            state = self._md.get(seq)
            if state is None:
                continue
            state.expected_reports -= 1
            if state.reports >= state.expected_reports:
                flag = self._finalize_partial(seq, state)
                if flag is not None:
                    finalized.append(flag)
        return finalized

    def finalize_partial_md(self) -> int:
        """Finalize every still-open piece with the reports it has
        (run teardown).  Bounds ``_md`` memory when gateways died
        without ever flushing.  Returns how many pieces were closed."""
        pending = list(self._md.items())
        for seq, state in pending:
            self._finalize_partial(seq, state)
        return len(pending)

    def open_md_pieces(self) -> int:
        """Pieces still awaiting gateway reports."""
        return len(self._md)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def inbound_unfairness_ratio(self) -> float:
        """Fraction of orders processed out of (measured) sequence."""
        if self.orders_released == 0:
            return 0.0
        return self.out_of_sequence / self.orders_released

    def inbound_unfairness_ratio_true(self) -> float:
        """Out-of-sequence fraction against ground-truth stamping order."""
        if self.orders_released == 0:
            return 0.0
        return self.out_of_sequence_true / self.orders_released

    def outbound_unfairness_ratio(self) -> float:
        """Fraction of market-data pieces late at >= 1 gateway.

        Partially-reported pieces (gateway crash) still count: at
        least one gateway observed the release.  Unreported pieces
        carry no fairness information and are excluded.
        """
        denominator = self.md_pieces_finalized + self.md_pieces_partial
        if denominator == 0:
            return 0.0
        return self.md_pieces_unfair / denominator

    def mean_queuing_delay_us(self) -> float:
        """Average sequencer queuing delay (Fig. 4a/5a y-axis)."""
        if not self.queuing_delays_ns:
            return 0.0
        return float(np.mean(self.queuing_delays_ns)) / MICROSECOND

    def mean_releasing_delay_us(self) -> float:
        """Average H/R hold time (Fig. 4b/5b y-axis)."""
        if not self.releasing_delays_ns:
            return 0.0
        return float(np.mean(self.releasing_delays_ns)) / MICROSECOND

    def submission_summary(self) -> LatencySummary:
        return LatencySummary.from_ns(self.submission_latencies_ns)

    def submission_mean_by_participant_us(self) -> Dict[str, float]:
        """Mean submission latency per participant, in microseconds.

        The spread of these means is the cross-participant fairness
        view: on equalized paths every participant should see the same
        service (see tests/integration/test_fair_access.py).
        """
        return {
            participant: total / count / MICROSECOND
            for participant, (count, total) in self._submission_by_participant.items()
            if count > 0
        }

    def e2e_summary(self) -> LatencySummary:
        return LatencySummary.from_ns(self.e2e_latencies_ns)

    def throughput_per_s(self) -> float:
        """Matched orders per second over the measurement window."""
        window = self.measure_end_true - self.measure_start_true
        if window <= 0:
            return 0.0
        return self.orders_matched * SECOND / window

    def summary(self) -> Dict[str, float]:
        """One flat dict with the headline numbers (for reports/tests)."""
        submission = self.submission_summary()
        e2e = self.e2e_summary()
        return {
            "orders_matched": float(self.orders_matched),
            "trades_executed": float(self.trades_executed),
            "replicas_received": float(self.replicas_received),
            "duplicates_dropped": float(self.duplicates_dropped),
            "messages_dropped": float(self.messages_dropped()),
            "throughput_per_s": self.throughput_per_s(),
            "submission_p50_us": submission.p50_us,
            "submission_p99_us": submission.p99_us,
            "submission_p999_us": submission.p999_us,
            "e2e_p50_us": e2e.p50_us,
            "md_pieces_partial": float(self.md_pieces_partial),
            "md_pieces_unreported": float(self.md_pieces_unreported),
            "inbound_unfairness": self.inbound_unfairness_ratio(),
            "inbound_unfairness_true": self.inbound_unfairness_ratio_true(),
            "outbound_unfairness": self.outbound_unfairness_ratio(),
            "mean_queuing_delay_us": self.mean_queuing_delay_us(),
            "mean_releasing_delay_us": self.mean_releasing_delay_us(),
        }

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(orders={self.orders_matched}, trades={self.trades_executed}, "
            f"md={self.md_pieces_finalized})"
        )
