#!/usr/bin/env python3
"""The latency-fairness trade-off, hands on (paper §2.2, Figs. 4-5).

Sweeps the static sequencer delay d_s, then runs DDP at two target
unfairness ratios, and prints the resulting trade-off table -- a
miniature of Fig. 4a you can explore interactively by editing the
sweep values.  A third phase swaps the whole fairness *mechanism*
(:mod:`repro.fairness`): cloudex vs DBO vs PFO vs no-op under one seed,
the design-space comparison the paper's fixed architecture couldn't
make.

All phases run through the sweep harness (:mod:`repro.exp`): declare
a grid, get parallel fan-out, crash tolerance, and on-disk result
caching for free -- re-running this script recomputes nothing unless
you change a sweep value (or the simulator itself).

Run:  python examples/fairness_lab.py [--jobs N]
"""

import argparse

from repro.analysis.tables import format_table
from repro.exp import SweepSpec, run_sweep
from repro.fairness.study import build_fairness_spec, run_fairness_study
from repro.obs.breakdown import policy_comparison_table

SWEEP_DS_US = [0.0, 200.0, 400.0, 700.0, 1000.0]
DDP_TARGETS = [0.01, 0.03]

#: The small lab cluster both phases share.
BASE = dict(
    n_participants=16,
    n_gateways=8,
    n_symbols=20,
    orders_per_participant_per_s=400.0,
    subscriptions_per_participant=2,
    holdrelease_delay_us=1200.0,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="sweep worker processes")
    args = parser.parse_args()

    print("Static sweep of d_s...")
    static = run_sweep(
        SweepSpec(
            name="fairness-lab-static",
            grid=[{"sequencer_delay_us": d_s} for d_s in SWEEP_DS_US],
            seeds=[21],
            base=BASE,
            warmup_s=0.5,
            duration_s=1.5,
        ),
        jobs=args.jobs,
    )
    assert static.ok, static.failures

    print("DDP runs...")
    ddp = run_sweep(
        SweepSpec(
            name="fairness-lab-ddp",
            grid=[
                {"sequencer_delay_us": 300.0, "ddp_inbound_target": target}
                for target in DDP_TARGETS
            ],
            seeds=[21],
            base=BASE,
            warmup_s=2.0,  # DDP needs time to converge on its target
            duration_s=1.5,
        ),
        jobs=args.jobs,
    )
    assert ddp.ok, ddp.failures

    rows = []
    for entry in static.document["points"]:
        d_s = entry["point"]["sequencer_delay_us"]
        result = entry["result"]
        rows.append(
            [
                f"S-{int(d_s)}us",
                f"{result['inbound_unfairness']:.3%}",
                f"{result['mean_queuing_delay_us']:.0f}",
            ]
        )
    for entry in ddp.document["points"]:
        target = entry["point"]["ddp_inbound_target"]
        result = entry["result"]
        d_s = result["d_s_ns"] / 1000
        rows.append(
            [
                f"D-{target:.0%} (d_s -> {d_s:.0f}us)",
                f"{result['inbound_unfairness']:.3%}",
                f"{result['mean_queuing_delay_us']:.0f}",
            ]
        )

    print("\nThe latency-fairness trade-off (cf. Fig. 4a):\n")
    print(format_table(["setting", "inbound unfairness", "avg queuing delay (us)"], rows))
    print(
        "\nReading it: larger d_s buys fairness with queuing delay;"
        "\nDDP picks d_s automatically to land on the target ratio."
        f"\n(tasks: {static.executed + ddp.executed} executed, "
        f"{static.from_cache + ddp.from_cache} from cache)"
    )

    print("\nFour fairness mechanisms, one storm...")
    spec, labels = build_fairness_spec(
        clocks=("huygens",),
        scenarios=("latency_storm",),
        n_participants=8,
        n_gateways=4,
        n_symbols=10,
        rate_per_participant=300.0,
        warmup_s=0.3,
        duration_s=0.8,
        name="fairness-lab-policies",
    )
    frontier, outcome = run_fairness_study(spec, labels, jobs=args.jobs)
    assert outcome.ok, outcome.failures

    print()
    print(
        policy_comparison_table(
            [
                (policy, {
                    "inbound_unfairness_true": s["unfairness_true_mean"],
                    "hr_late_ratio": s["hr_late_ratio_mean"],
                    "e2e_p50_us": s["e2e_p50_us_mean"],
                    "events_per_order": s["events_per_order_mean"],
                })
                for policy, s in frontier["frontier"].items()
            ],
            columns=("inbound_unfairness_true", "hr_late_ratio",
                     "e2e_p50_us", "events_per_order"),
        )
    )
    print(
        "\nReading it: cloudex buys the most inbound order with the most"
        "\nhold; DBO gets close with no clock sync and less latency; PFO"
        "\ntrades a small miss probability for shorter holds; no-op is"
        "\nthe fast, unfair floor.  Full grid: python -m repro fairness"
    )


if __name__ == "__main__":
    main()
