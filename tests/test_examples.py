"""Smoke tests for the example scripts.

Each example is importable with a ``main``; the cheapest one runs end
to end.  (The longer examples are exercised manually / by CI at a
different cadence -- they each simulate several seconds of trading.)
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert set(EXAMPLES) >= {
            "quickstart",
            "trading_competition",
            "fairness_lab",
            "resilient_submission",
            "historical_data",
            "batch_vs_continuous",
            "regulated_exchange",
        }

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_defines_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name}.py needs a main()"

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Exchange report" in out
        assert "inbound_unfairness" in out
