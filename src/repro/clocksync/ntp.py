"""NTP-style baseline estimator.

The paper's footnote 3: "When we tried CloudEx with NTP, the standard
in software clock synchronization, we found ~10 ms clock offsets
between gateways.  These offsets are much larger than CloudEx's
gateway-to-matching-engine latencies, making NTP unsuitable."

NTP's offset estimate from a single client/server exchange is

    offset = ((t2 - t1) + (t3 - t4)) / 2

i.e. the midpoint of one forward and one reverse difference, with *no*
filtering of queueing delay and *no* frequency estimation per round.
Its error is therefore half the forward/reverse delay asymmetry of the
full server path -- milliseconds when the server is several (variable)
network hops away -- rather than the nanoseconds a filtered
minimum-envelope achieves on a direct intra-zone path.
"""

from __future__ import annotations

from typing import Sequence

from repro.clocksync.huygens import EstimationError, SyncEstimate
from repro.clocksync.probes import ProbeExchange


class NtpEstimator:
    """Midpoint-of-one-exchange estimator (optionally averaging a few).

    Parameters
    ----------
    samples_to_average:
        NTP implementations keep a short filter register; averaging a
        handful of recent exchanges smooths but does not remove the
        path-asymmetry error.
    """

    def __init__(self, samples_to_average: int = 1) -> None:
        if samples_to_average < 1:
            raise ValueError(f"need at least one sample, got {samples_to_average}")
        self.samples_to_average = samples_to_average

    def estimate(
        self,
        forward: Sequence[ProbeExchange],
        reverse: Sequence[ProbeExchange],
        rate_hint_ppb: int = 0,
    ) -> SyncEstimate:
        """Estimate from the most recent exchange(s), unfiltered.

        ``rate_hint_ppb`` is accepted for interface compatibility and
        ignored: NTP does not detrend within a poll.
        """
        if not forward or not reverse:
            raise EstimationError(
                f"need probes in both directions, got {len(forward)} forward / {len(reverse)} reverse"
            )
        k = self.samples_to_average
        fwd = list(forward)[-k:]
        rev = list(reverse)[-k:]
        n = min(len(fwd), len(rev))
        offsets = [(f.difference - r.difference) / 2.0 for f, r in zip(fwd[-n:], rev[-n:])]
        offset = sum(offsets) / len(offsets)
        return SyncEstimate(
            offset_ns=int(round(offset)),
            rate_ppb=0,
            ref_raw_ns=fwd[-1].recv_local,
            samples_used=2 * n,
        )
