"""Named, deterministic random-number streams.

Every stochastic component in the simulator (each network link, each
trading bot, each clock) draws from its own named substream derived from
a single master seed.  Two properties follow:

1. **Reproducibility** -- the same master seed yields byte-identical
   runs, independent of the order in which components are constructed.
2. **Isolation** -- adding a new component (a new link, say) does not
   perturb the draws seen by existing components, because streams are
   keyed by stable names rather than by construction order.

Streams are ``numpy.random.Generator`` instances seeded via
``numpy.random.SeedSequence`` spawned with a stable hash of the stream
name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 128-bit integer.

    Python's builtin ``hash`` is salted per-process, so we use BLAKE2
    for a digest that is stable across runs and machines.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory and cache for named random streams.

    Parameters
    ----------
    master_seed:
        The seed controlling the whole simulation.  Streams produced by
        registries with different master seeds are unrelated.

    Examples
    --------
    >>> rngs = RngRegistry(7)
    >>> link_rng = rngs.stream("link:gw0->engine")
    >>> bot_rng = rngs.stream("trader:42")
    >>> rngs.stream("link:gw0->engine") is link_rng
    True
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence([self.master_seed, _name_to_entropy(name)])
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngRegistry":
        """Return an independent registry (e.g. for a repeated trial).

        The fork's streams are unrelated to the parent's even for equal
        stream names, which is what repeated-trial benchmarks need.
        """
        return RngRegistry((self.master_seed * 1_000_003 + salt) & (2**63 - 1))

    def __repr__(self) -> str:
        return f"RngRegistry(master_seed={self.master_seed}, streams={len(self._streams)})"
