"""CloudEx reproduction: a fair-access financial exchange in the cloud.

A from-scratch Python implementation of the system described in

    Ghalayini et al., "CloudEx: A Fair-Access Financial Exchange in
    the Cloud", HotOS '21.

The package is layered:

- :mod:`repro.sim` -- discrete-event substrate standing in for the
  paper's Google Cloud testbed (VMs, clocks, links, CPU accounting).
- :mod:`repro.clocksync` -- Huygens-style and NTP clock sync.
- :mod:`repro.storage` -- Bigtable-like store + historical data API.
- :mod:`repro.core` -- CloudEx itself: gateways, sequencer, matching
  engine, hold/release buffers, DDP, ROS, sharding.
- :mod:`repro.traders` -- strategies and workload generation.
- :mod:`repro.analysis` -- statistics and table/figure rendering.

Quickstart::

    from repro import CloudExCluster, CloudExConfig

    cluster = CloudExCluster(CloudExConfig(n_participants=8, n_gateways=4,
                                           n_symbols=10, seed=7))
    cluster.add_default_workload()
    cluster.run(duration_s=2.0)
    print(cluster.metrics.summary())
"""

from repro.core import CloudExCluster, CloudExConfig

__version__ = "1.0.0"

__all__ = ["CloudExCluster", "CloudExConfig", "__version__"]
