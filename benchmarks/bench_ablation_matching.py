"""Ablation: continuous price-time matching vs frequent batch auctions.

Paper §5 cites frequent batch auctions (Budish et al.) as the
*algorithmic* alternative to CloudEx's infrastructure-level fairness,
and §7 names "new auction mechanisms" as a target use of CloudEx as a
market simulator.  This benchmark runs that experiment: the canonical
latency-arbitrage race.

Scenario, repeated for many races: a stale sell quote rests at the old
fair value; public news moves the fair value up; a *fast* trader
(lower reaction latency) and a *slow* trader both fire buys at the new
value.  Under continuous matching the earlier arrival takes the whole
quote -- pure speed rent.  Under an FBA whose interval exceeds the
latency gap, both land in the same batch and share the margin
pro-rata, so speed buys (almost) nothing.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.batchauction import BatchAuctionCore
from repro.core.matching import MatchingEngineCore
from repro.core.order import Order
from repro.core.portfolio import PortfolioMatrix
from repro.core.types import OrderType, Side

N_RACES = 400
FAST_LATENCY_US = 80.0
SLOW_LATENCY_US = 120.0
JITTER_US = 15.0  # per-reaction noise; keeps the race occasionally close
QUOTE_QTY = 100


def _order(coid, participant, side, qty, price, ts):
    return Order(
        client_order_id=coid,
        participant_id=participant,
        symbol="S",
        side=side,
        order_type=OrderType.LIMIT,
        quantity=qty,
        limit_price=price,
        gateway_id="g",
        gateway_timestamp=ts,
        gateway_seq=coid,
    )


def _race_arrivals(rng):
    """Arrival times (ns) of the fast and slow traders' orders."""
    fast = (FAST_LATENCY_US + rng.normal(0, JITTER_US)) * 1_000
    slow = (SLOW_LATENCY_US + rng.normal(0, JITTER_US)) * 1_000
    return int(max(fast, 1)), int(max(slow, 1))


def run_races(mode: str, seed: int = 7):
    """Returns (fast trader's share of the stale quote, races where the
    fast trader captured strictly more than the slow one)."""
    rng = np.random.default_rng(seed)
    ids = itertools.count(1)
    portfolio = PortfolioMatrix(default_cash=10**12)
    for pid in ("maker", "fast", "slow"):
        portfolio.open_account(pid)
    fast_qty = 0
    fast_strict_wins = 0
    for race in range(N_RACES):
        stale_price = 10_000
        news_price = 10_010
        fast_at, slow_at = _race_arrivals(rng)
        quote = _order(next(ids), "maker", Side.SELL, QUOTE_QTY, stale_price, ts=0)
        fast_buy = _order(next(ids), "fast", Side.BUY, QUOTE_QTY, news_price, ts=fast_at)
        slow_buy = _order(next(ids), "slow", Side.BUY, QUOTE_QTY, news_price, ts=slow_at)
        arrivals = sorted(
            [(fast_at, fast_buy), (slow_at, slow_buy)], key=lambda pair: pair[0]
        )

        got = {"fast": 0, "slow": 0}
        if mode == "continuous":
            core = MatchingEngineCore(["S"], portfolio)
            core.process_order(quote, now_local=0)
            for at, order in arrivals:
                result = core.process_order(order, now_local=at)
                for trade in result.trades:
                    got[trade.buyer] += trade.quantity
        else:
            core = BatchAuctionCore(["S"], portfolio, reference_prices={"S": stale_price})
            core.add_order(quote)
            for _, order in arrivals:
                core.add_order(order)
            result = core.run_auction("S", now_local=1_000_000)
            for trade in result.trades:
                got[trade.buyer] += trade.quantity

        fast_qty += got["fast"]
        if got["fast"] > got["slow"]:
            fast_strict_wins += 1

    total = N_RACES * QUOTE_QTY
    return fast_qty / total, fast_strict_wins / N_RACES


def test_latency_arbitrage_race(benchmark):
    def run():
        return {mode: run_races(mode) for mode in ("continuous", "fba")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: who captures the stale quote? (fast vs slow trader)",
        ["matching", "fast trader's share", "races won outright by fast"],
        [
            ["continuous price-time", f"{results['continuous'][0]:.1%}",
             f"{results['continuous'][1]:.1%}"],
            ["frequent batch auction", f"{results['fba'][0]:.1%}",
             f"{results['fba'][1]:.1%}"],
        ],
    )
    # Continuous: speed wins essentially always (latency gap >> jitter).
    assert results["continuous"][0] > 0.9
    # FBA: the margin is shared pro-rata -- speed rent eliminated.
    assert results["fba"][0] == pytest.approx(0.5, abs=0.05)
    assert results["fba"][1] < 0.1
