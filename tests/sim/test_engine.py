"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Actor, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        hits = []
        sim.schedule(300, hits.append, "c")
        sim.schedule(100, hits.append, "a")
        sim.schedule(200, hits.append, "b")
        sim.run()
        assert hits == ["a", "b", "c"]

    def test_simultaneous_events_run_in_scheduling_order(self, sim):
        hits = []
        for tag in "abcde":
            sim.schedule(50, hits.append, tag)
        sim.run()
        assert hits == list("abcde")

    def test_priority_breaks_timestamp_ties(self, sim):
        hits = []
        sim.schedule(50, hits.append, "late", priority=1)
        sim.schedule(50, hits.append, "early", priority=0)
        sim.run()
        assert hits == ["early", "late"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1_000, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1_000]
        assert sim.now == 1_000

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_handlers_can_schedule_more_events(self, sim):
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert hits == [0, 1, 2, 3]
        assert sim.now == 30


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        hits = []
        event = sim.schedule(100, hits.append, "x")
        event.cancel()
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(100, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(100, lambda: None)
        drop = sim.schedule(200, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        assert keep is not drop


class TestRunControl:
    def test_run_until_stops_at_boundary(self, sim):
        hits = []
        sim.schedule(100, hits.append, "in")
        sim.schedule(500, hits.append, "out")
        sim.run(until=250)
        assert hits == ["in"]
        assert sim.now == 250
        sim.run(until=600)
        assert hits == ["in", "out"]

    def test_run_until_advances_time_even_with_no_events(self, sim):
        sim.run(until=1_000)
        assert sim.now == 1_000

    def test_max_events_limits_processing(self, sim):
        hits = []
        for i in range(10):
            sim.schedule(i, hits.append, i)
        sim.run(max_events=4)
        assert hits == [0, 1, 2, 3]

    def test_max_events_with_until_does_not_warp_time(self, sim):
        """Regression: breaking on max_events with events still pending
        before `until` must not fast-forward `now` past them -- the next
        run() would pop those events and move time backwards."""
        hits = []
        for t in (10, 20, 30):
            sim.schedule(t, hits.append, t)
        sim.run(until=100, max_events=1)
        assert hits == [10]
        assert sim.now == 10  # not warped to 100
        # Scheduling between the pending events and `until` stays legal.
        sim.schedule_at(15, hits.append, 15)
        sim.run(until=100)
        assert hits == [10, 15, 20, 30]
        assert sim.now == 100  # natural drain: fast-forward applies
        times = []
        sim.schedule_at(200, lambda: times.append(sim.now))
        sim.run()
        assert times == [200]

    def test_max_events_break_then_resume_time_is_monotone(self, sim):
        observed = []
        for t in (10, 20, 30, 40):
            sim.schedule(t, lambda: observed.append(sim.now))
        sim.run(until=1_000, max_events=2)
        sim.run(until=1_000)
        assert observed == sorted(observed)
        assert sim.now == 1_000

    def test_stop_from_handler(self, sim):
        hits = []
        sim.schedule(10, hits.append, 1)
        sim.schedule(20, lambda: sim.stop())
        sim.schedule(30, hits.append, 2)
        sim.run()
        assert hits == [1]

    def test_step_runs_one_event(self, sim):
        hits = []
        sim.schedule(5, hits.append, "a")
        sim.schedule(6, hits.append, "b")
        assert sim.step() is True
        assert hits == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestReprAgreesWithPending:
    def test_repr_agrees_with_pending_after_cancel(self, sim):
        """Regression: __repr__ used len(self._heap), which counts
        cancelled-but-unpopped entries and disagrees with pending()."""
        sim.schedule(100, lambda: None)
        dropped = sim.schedule(200, lambda: None)
        dropped.cancel()
        assert sim.pending() == 1
        assert "pending=1" in repr(sim)

    def test_repr_counts_message_fast_path_entries(self, sim):
        sim.schedule_message(50, lambda _: None, None)
        assert sim.pending() == 1
        assert "pending=1" in repr(sim)


class TestHookSeesFastPathEntries:
    """Regression: a dispatch_hook installed after schedule_message put
    tuple fast-path entries in the heap used to miss those dispatches
    entirely (DispatchProfiler undercounted when tracing was enabled
    after warmup)."""

    def test_hook_installed_between_schedule_and_run(self, sim):
        hits, seen = [], []
        append = hits.append
        sim.schedule_message(10, append, "a")
        sim.schedule_message(20, append, "b")
        sim.dispatch_hook = seen.append
        sim.run()
        assert hits == ["a", "b"]
        assert [(event.time, event.args) for event in seen] == [(10, ("a",)), (20, ("b",))]
        assert all(event.fn is append for event in seen)

    def test_hook_installed_mid_run(self, sim):
        seen = []
        sim.schedule_message(10, lambda _: None, "early")
        sim.schedule(15, lambda: setattr(sim, "dispatch_hook", seen.append))
        sim.schedule_message(20, lambda _: None, "late")
        sim.run()
        # Only the delivery after the install is traced; it was already
        # a tuple entry in the heap when the hook appeared.
        assert [event.args for event in seen] == [("late",)]

    def test_step_invokes_hook_for_tuple_entries(self, sim):
        seen = []
        sim.schedule_message(10, lambda _: None, "x")
        sim.dispatch_hook = seen.append
        assert sim.step() is True
        assert [event.args for event in seen] == [("x",)]

    def test_synthetic_event_preserves_seq(self, sim):
        seen = []
        sim.schedule(5, lambda: None)  # seq 0
        sim.schedule_message(10, lambda _: None, "x")  # seq 1
        sim.dispatch_hook = seen.append
        sim.run()
        assert [event.seq for event in seen] == [0, 1]


class TestStepSemantics:
    def test_reentrant_step_rejected(self, sim):
        """Regression: step() lacked run()'s re-entrancy guard."""
        errors = []

        def nested():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, nested)
        sim.run()
        assert len(errors) == 1

    def test_step_inside_step_rejected(self, sim):
        errors = []

        def nested():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, nested)
        assert sim.step() is True
        assert len(errors) == 1

    def test_stop_then_step_honours_the_request(self, sim):
        """Regression: step() ignored a prior stop() request."""
        hits = []
        sim.schedule(10, hits.append, "x")
        sim.stop()
        assert sim.step() is False  # consumes the stop request
        assert hits == []
        assert sim.pending() == 1
        assert sim.step() is True  # request was one-shot, like run()
        assert hits == ["x"]


class TestScheduleMessageBulk:
    def _dispatch_order(self, schedule, n_background=0):
        sim = Simulator()
        hits = []
        for i in range(n_background):
            sim.schedule(1_000 + i, hits.append, ("bg", i))
        schedule(sim, hits)
        sim.run()
        return hits, sim.events_processed, sim.pending()

    @pytest.mark.parametrize("n_background", [0, 100])
    @pytest.mark.parametrize("n_entries", [1, 5, 64])
    def test_matches_scalar_schedule_message(self, n_entries, n_background):
        """Bulk scheduling consumes the same seq numbers, so dispatch
        order is identical whichever path (and whichever internal heap
        strategy) a train takes."""
        times = [((i * 37) % 19) * 100 for i in range(n_entries)]  # dups included

        def scalar(sim, hits):
            for i, t in enumerate(times):
                sim.schedule_message(t, hits.append, ("m", i))

        def bulk(sim, hits):
            sim.schedule_message_bulk([(t, hits.append, ("m", i)) for i, t in enumerate(times)])

        assert self._dispatch_order(scalar, n_background) == self._dispatch_order(
            bulk, n_background
        )

    def test_counts_pending_and_processed(self, sim):
        sim.schedule_message_bulk([(10, lambda _: None, i) for i in range(12)])
        assert sim.pending() == 12
        sim.run()
        assert sim.events_processed == 12
        assert sim.pending() == 0

    def test_past_time_rejected_atomically(self, sim):
        sim.schedule(100, lambda: None)
        sim.run()
        before = sim.pending()
        with pytest.raises(SimulationError):
            sim.schedule_message_bulk(
                [(200, lambda _: None, 0), (50, lambda _: None, 1), (300, lambda _: None, 2)]
            )
        assert sim.pending() == before  # validation precedes admission

    def test_delegates_to_events_while_hook_installed(self, sim):
        seen, hits = [], []
        sim.dispatch_hook = seen.append
        sim.schedule_message_bulk([(10, hits.append, "a"), (20, hits.append, "b")])
        sim.run()
        assert hits == ["a", "b"]
        assert [event.args for event in seen] == [("a",), ("b",)]


class TestActor:
    def test_unhandled_message_raises(self, sim):
        actor = Actor(sim, "a1")
        with pytest.raises(NotImplementedError):
            actor.on_message("payload", "sender")

    def test_repr_contains_name(self, sim):
        assert "a1" in repr(Actor(sim, "a1"))
