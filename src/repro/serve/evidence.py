"""Evidence packs: writing and offline verification.

A completed run's pack is one directory:

========================  ============================================
``report.json``           the run's deterministic document -- byte-
                          identical to the same spec run directly via
                          ``python -m repro sweep``/``chaos``
``trace.jsonl``           per-order lifecycle traces from
                          :mod:`repro.obs` (chaos runs; empty for jobs
                          with no per-order tracing)
``certificate.json``      *clean runs only*: signed attestation (see
                          :mod:`repro.serve.certificate`)
``triage.json``           *unclean runs only*: the violations/failures
``manifest.json``         the index: schema, run identity, provenance,
                          and a BLAKE2 digest + size for every other
                          artifact.  Written last.
========================  ============================================

:func:`verify_pack` re-derives everything re-derivable offline: every
manifest hash against the bytes on disk, exactly-one-of
certificate/triage, certificate/triage consistency with the manifest,
and (given the operator secret) the certificate signature.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve.certificate import (
    TRIAGE_SCHEMA,
    build_triage,
    issue_certificate,
    verify_certificate,
)

MANIFEST_SCHEMA = "repro-evidence-pack/1"
VERIFICATION_SCHEMA = "repro-pack-verification/1"

REPORT = "report.json"
TRACE = "trace.jsonl"
CERTIFICATE = "certificate.json"
TRIAGE = "triage.json"
MANIFEST = "manifest.json"


def artifact_digest(data: bytes) -> Dict[str, object]:
    """The manifest entry for one artifact's bytes."""
    return {
        "blake2b": hashlib.blake2b(data, digest_size=16).hexdigest(),
        "bytes": len(data),
    }


def write_pack(
    pack_dir,
    run_id: str,
    kind: str,
    spec: Dict[str, object],
    code_version: str,
    report: bytes,
    trace: bytes,
    clean: bool,
    violations: List[Dict[str, object]],
    secret: str,
) -> Dict[str, object]:
    """Write a complete evidence pack; returns the manifest document.

    ``clean`` decides certificate vs. triage; ``violations`` feeds the
    triage report (and must be empty when ``clean``).
    """
    if clean and violations:
        raise ValueError("a clean run cannot carry violations")
    pack = Path(pack_dir)
    pack.mkdir(parents=True, exist_ok=True)

    artifacts: Dict[str, bytes] = {REPORT: report, TRACE: trace}
    digests = {name: artifact_digest(data) for name, data in artifacts.items()}

    if clean:
        verdict_name = CERTIFICATE
        verdict_doc = issue_certificate(run_id, kind, spec, code_version, digests, secret)
    else:
        verdict_name = TRIAGE
        verdict_doc = build_triage(run_id, kind, spec, code_version, violations)
    verdict_bytes = (json.dumps(verdict_doc, indent=2, sort_keys=True) + "\n").encode("utf-8")
    artifacts[verdict_name] = verdict_bytes
    digests[verdict_name] = artifact_digest(verdict_bytes)

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "kind": kind,
        "spec": spec,
        "code_version": code_version,
        "certified": clean,
        "artifacts": digests,
    }
    for name, data in artifacts.items():
        (pack / name).write_bytes(data)
    (pack / MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return manifest


def verify_pack(pack_dir, secret: Optional[str] = None) -> Dict[str, object]:
    """Offline pack verification; returns the verification document.

    ``{"ok": bool, "checks": [...], "problems": [...], ...}`` -- ``ok``
    iff no problems.  Passing the operator ``secret`` additionally
    verifies the certificate signature; without it the signature is
    explicitly reported as unchecked, never silently passed.
    """
    pack = Path(pack_dir)
    checks: List[str] = []
    problems: List[str] = []
    certified: Optional[bool] = None

    def done() -> Dict[str, object]:
        return {
            "schema": VERIFICATION_SCHEMA,
            "pack": str(pack),
            "ok": not problems,
            "certified": certified,
            "checks": checks,
            "problems": problems,
        }

    manifest_path = pack / MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError:
        problems.append(f"missing or unreadable {MANIFEST} in {pack}")
        return done()
    except ValueError as exc:
        problems.append(f"{MANIFEST} is not valid JSON: {exc}")
        return done()
    if manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"manifest schema is {manifest.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
        )
        return done()
    checks.append("manifest parses and has the expected schema")
    certified = bool(manifest.get("certified"))

    listed: Dict[str, Dict[str, object]] = manifest.get("artifacts", {})
    if REPORT not in listed or TRACE not in listed:
        problems.append(f"manifest must list {REPORT} and {TRACE}")
    problems_before_digests = len(problems)
    for name, entry in sorted(listed.items()):
        path = pack / Path(name).name  # no traversal: artifact names are flat
        try:
            data = path.read_bytes()
        except OSError:
            problems.append(f"artifact {name} is listed in the manifest but missing")
            continue
        actual = artifact_digest(data)
        if actual != entry:
            problems.append(
                f"artifact {name} does not match its manifest digest "
                f"(expected {entry}, got {actual})"
            )
    if len(problems) == problems_before_digests:
        checks.append(f"{len(listed)} artifact digest(s) match the bytes on disk")

    extras = sorted(
        p.name
        for p in pack.iterdir()
        if p.is_file() and p.name != MANIFEST and p.name not in listed
    )
    if extras:
        problems.append(f"unlisted file(s) in pack: {', '.join(extras)}")

    has_cert = CERTIFICATE in listed
    has_triage = TRIAGE in listed
    if has_cert == has_triage:
        problems.append(
            f"a pack must contain exactly one of {CERTIFICATE} / {TRIAGE} "
            f"(found {'both' if has_cert else 'neither'})"
        )
        return done()

    if has_cert:
        if not certified:
            problems.append("manifest says certified=false but a certificate is present")
        try:
            certificate = json.loads((pack / CERTIFICATE).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            problems.append(f"{CERTIFICATE} unreadable: {exc}")
            return done()
        problems.extend(verify_certificate(certificate, secret))
        for field in ("run_id", "kind", "code_version"):
            if certificate.get(field) != manifest.get(field):
                problems.append(
                    f"certificate {field} ({certificate.get(field)!r}) does not "
                    f"match manifest ({manifest.get(field)!r})"
                )
        cert_artifacts = certificate.get("artifacts", {})
        for name in (REPORT, TRACE):
            if cert_artifacts.get(name) != listed.get(name):
                problems.append(
                    f"certificate binds a different {name} digest than the manifest"
                )
        if not problems:
            checks.append("certificate is consistent with the manifest")
            checks.append(
                "certificate signature verifies with the operator secret"
                if secret is not None
                else "certificate signature NOT checked (no secret given)"
            )
    else:
        if certified:
            problems.append("manifest says certified=true but only a triage report is present")
        try:
            triage = json.loads((pack / TRIAGE).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            problems.append(f"{TRIAGE} unreadable: {exc}")
            return done()
        if triage.get("schema") != TRIAGE_SCHEMA:
            problems.append(
                f"triage schema is {triage.get('schema')!r}, expected {TRIAGE_SCHEMA!r}"
            )
        violations = triage.get("violations", [])
        if triage.get("violation_count") != len(violations):
            problems.append("triage violation_count does not match its violations list")
        if not violations:
            problems.append(
                "triage report lists no violations -- a clean run should have "
                "a certificate instead"
            )
        if not problems:
            checks.append(
                f"triage report is consistent ({len(violations)} violation(s), "
                "no certificate claimed)"
            )
    return done()
