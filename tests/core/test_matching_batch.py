"""Differential tests: ``process_batch`` == a ``process_order`` loop.

The batched kernel's inner loop skips every per-order allocation the
scalar path makes, so its correctness argument is equivalence, not
inspection: run the same random order stream through both paths and
demand identical books, trades, settlement, counters, and status
tallies.
"""

import itertools

import numpy as np
import pytest

from repro.core.matching import BatchMatchStats, MatchingEngineCore
from repro.core.order import Order
from repro.core.portfolio import PortfolioMatrix
from repro.core.types import OrderStatus, OrderType, Side, TimeInForce

SYMBOLS = ("AAA", "BBB", "CCC")
PARTICIPANTS = tuple(f"p{i}" for i in range(6))


def _random_specs(seed, n):
    """Order field dicts (specs), so each core gets fresh Order objects."""
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(n):
        roll = rng.random()
        symbol = "ZZZ" if roll < 0.02 else SYMBOLS[int(rng.integers(len(SYMBOLS)))]
        market = rng.random() < 0.08
        ioc = rng.random() < 0.15
        specs.append(
            dict(
                client_order_id=i + 1,
                participant_id=PARTICIPANTS[int(rng.integers(len(PARTICIPANTS)))],
                symbol=symbol,
                side=Side.BUY if rng.random() < 0.5 else Side.SELL,
                order_type=OrderType.MARKET if market else OrderType.LIMIT,
                quantity=int(rng.integers(1, 50)),
                limit_price=None if market else int(10_000 + rng.integers(-30, 31)),
                time_in_force=TimeInForce.IOC if ioc and not market else TimeInForce.GTC,
                gateway_id="g0",
                gateway_timestamp=100 * (len(specs) + 1),
                gateway_seq=len(specs),
            )
        )
        if rng.random() < 0.05 and specs:
            # Duplicate an earlier (participant, coid) to hit the
            # duplicate-order-id reject when the original still rests.
            dup = dict(specs[int(rng.integers(len(specs)))])
            dup["gateway_timestamp"] = 100 * (len(specs) + 1)
            dup["gateway_seq"] = len(specs)
            specs.append(dup)
    return specs


def _build_core():
    portfolio = PortfolioMatrix()
    for pid in PARTICIPANTS:
        portfolio.open_account(pid, cash=0)
    return MatchingEngineCore(SYMBOLS, portfolio, trade_id_counter=itertools.count(1))


def _book_state(core):
    state = {}
    for symbol, book in core.books.items():
        state[symbol] = book.depth_snapshot(50)
    return state


def _portfolio_state(core):
    return {
        pid: (core.portfolio.account(pid).cash, dict(core.portfolio.account(pid).positions))
        for pid in PARTICIPANTS
    }


STATUS_FIELD = {
    OrderStatus.ACCEPTED: "accepted",
    OrderStatus.PARTIALLY_FILLED: "partially_filled",
    OrderStatus.FILLED: "filled",
    OrderStatus.CANCELLED: "cancelled",
    OrderStatus.REJECTED: "rejected",
}


class TestProcessBatchEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 2021, 90210])
    def test_matches_scalar_path(self, seed):
        specs = _random_specs(seed, 400)
        times = [100 * (i + 1) for i in range(len(specs))]

        scalar = _build_core()
        expected = BatchMatchStats()
        scalar_trades = []
        for spec, t in zip(specs, times):
            result = scalar.process_order(Order(**spec), t)
            expected.orders += 1
            field = STATUS_FIELD[result.confirmation.status]
            setattr(expected, field, getattr(expected, field) + 1)
            expected.trades += len(result.trades)
            expected.traded_qty += result.traded_quantity
            expected.notional += sum(tr.price * tr.quantity for tr in result.trades)
            scalar_trades.extend(
                (tr.symbol, tr.price, tr.quantity, tr.buyer, tr.seller) for tr in result.trades
            )

        batched = _build_core()
        batch_trades = []
        stats = batched.process_batch(
            [Order(**spec) for spec in specs],
            times,
            on_trade=lambda symbol, price, qty, buyer, seller: batch_trades.append(
                (symbol, price, qty, buyer.participant_id, seller.participant_id)
            ),
        )

        assert stats == expected
        assert batch_trades == scalar_trades
        assert _book_state(batched) == _book_state(scalar)
        assert batched.last_trade_price == scalar.last_trade_price
        assert batched.orders_processed == scalar.orders_processed
        assert _portfolio_state(batched) == _portfolio_state(scalar)
        # Both paths consumed the same number of trade ids.
        assert next(batched._trade_ids) == next(scalar._trade_ids)

    def test_settle_false_skips_portfolio_but_keeps_ids(self):
        specs = _random_specs(3, 200)
        times = list(range(1, len(specs) + 1))
        settled = _build_core()
        unsettled = _build_core()
        settled.process_batch([Order(**s) for s in specs], times)
        stats = unsettled.process_batch([Order(**s) for s in specs], times, settle=False)
        assert stats.trades > 0
        assert unsettled.portfolio.trades_applied == 0
        assert settled.portfolio.trades_applied == stats.trades
        # Identical book evolution and trade-id consumption either way.
        assert _book_state(unsettled) == _book_state(settled)
        assert next(unsettled._trade_ids) == next(settled._trade_ids)

    def test_rejects_configured_risk_paths(self):
        core = _build_core()
        core.self_trade_prevention = True
        with pytest.raises(ValueError):
            core.process_batch([], [])

    def test_stats_merge_and_dict_roundtrip(self):
        a = BatchMatchStats(orders=2, filled=1, accepted=1, trades=3, traded_qty=9, notional=90)
        b = BatchMatchStats(orders=1, rejected=1)
        a.merge(b)
        assert a.orders == 3 and a.rejected == 1
        assert a.to_dict()["traded_qty"] == 9
