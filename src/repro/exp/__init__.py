"""Parallel experiment sweeps (the evaluation harness).

Every result the project reproduces -- Table 1's shard scaling, the
DDP convergence figures, Fig. 6's ROS tail -- is a *sweep*: the same
measured cluster run repeated over a grid of config points and seeds.
This package turns those hand-rolled sequential loops into a single
declarative harness:

- :class:`~repro.exp.spec.SweepSpec` declares the grid (config
  overrides x seeds) and expands it into :class:`SweepTask` items with
  per-task seeds derived from the task's *identity*
  (:func:`repro.sim.rng.derive_seed`), never from enumeration or
  execution order.
- :func:`~repro.exp.runner.run_sweep` fans tasks out over a
  crash-tolerant ``multiprocessing`` pool
  (:mod:`repro.exp.pool`) with per-task timeouts and a content-hashed
  on-disk result cache (:mod:`repro.exp.cache`), then aggregates the
  results into one deterministic JSON document.

The aggregated document is byte-identical for any ``--jobs`` value:
workers only compute pure functions of their task, and everything
execution-dependent (wall time, cache hits, failures' tracebacks)
lives in the surrounding :class:`~repro.exp.runner.SweepOutcome`, not
the document.  See DESIGN.md for the determinism model.
"""

from repro.exp.cache import ResultCache, code_version_hash
from repro.exp.pool import TaskResult, run_parallel
from repro.exp.runner import SweepOutcome, run_sweep, sweep_table
from repro.exp.spec import SweepSpec, SweepTask

__all__ = [
    "ResultCache",
    "SweepOutcome",
    "SweepSpec",
    "SweepTask",
    "TaskResult",
    "code_version_hash",
    "run_parallel",
    "run_sweep",
    "sweep_table",
]
