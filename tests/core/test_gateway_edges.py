"""Edge-case tests for gateway validation and engine dispatch."""

import pytest

from repro.core.cluster import CloudExCluster
from repro.core.types import RejectReason, Side
from tests.conftest import small_config


@pytest.fixture
def cluster():
    return CloudExCluster(small_config(clock_sync="perfect"))


def collect_rejections(participant):
    seen = []

    class Spy:
        def on_confirmation(self, p, conf):
            if conf.reason is not None:
                seen.append(conf.reason)

        def on_trade(self, p, tc): ...
        def on_market_data(self, p, d): ...

    participant.strategy = Spy()
    return seen


class TestGatewayValidation:
    def test_oversized_quantity_rejected(self, cluster):
        participant = cluster.participant(0)
        rejections = collect_rejections(participant)
        participant.submit_limit("SYM000", Side.BUY, 2_000_000, 10_000)
        cluster.run(duration_s=0.05)
        assert rejections == [RejectReason.INVALID_QUANTITY]
        assert cluster.metrics.replicas_received == 0

    def test_zero_price_limit_rejected(self, cluster):
        participant = cluster.participant(0)
        rejections = collect_rejections(participant)
        participant.submit_limit("SYM000", Side.BUY, 10, 0)
        cluster.run(duration_s=0.05)
        assert rejections == [RejectReason.INVALID_PRICE]

    def test_rejected_order_does_not_count_handled(self, cluster):
        participant = cluster.participant(0)
        gateway = cluster.gateways[0]
        participant.submit_limit("NOPE", Side.BUY, 10, 100)
        cluster.run(duration_s=0.05)
        assert gateway.orders_handled == 0
        assert gateway.orders_rejected == 1

    def test_valid_after_invalid_still_flows(self, cluster):
        participant = cluster.participant(0)
        participant.submit_limit("NOPE", Side.BUY, 10, 100)
        participant.submit_limit("SYM000", Side.BUY, 10, 9_500)
        cluster.run(duration_s=0.1)
        assert cluster.metrics.orders_matched == 1


class TestActorDispatch:
    def test_engine_rejects_unknown_message(self, cluster):
        cluster.network.send("g00", "engine", object())
        with pytest.raises(NotImplementedError):
            cluster.run(duration_s=0.05)

    def test_gateway_rejects_unknown_message(self, cluster):
        cluster.network.send("engine", "g00", 12345)
        with pytest.raises(NotImplementedError):
            cluster.run(duration_s=0.05)

    def test_participant_rejects_unknown_message(self, cluster):
        cluster.network.send("g00", "p00", b"garbage")
        with pytest.raises(NotImplementedError):
            cluster.run(duration_s=0.05)
