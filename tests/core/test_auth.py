"""Tests for gateway authentication and API rate limiting."""

import pytest

from repro.core.auth import AuthRegistry, RateLimiter


class TestAuthRegistry:
    def test_verify_accepts_registered_token(self):
        auth = AuthRegistry()
        auth.register("p1", "secret")
        assert auth.verify("p1", "secret")

    def test_verify_rejects_wrong_token(self):
        auth = AuthRegistry()
        auth.register("p1", "secret")
        assert not auth.verify("p1", "wrong")

    def test_verify_rejects_unknown_participant(self):
        assert not AuthRegistry().verify("ghost", "anything")

    def test_rotation_invalidates_old_token(self):
        auth = AuthRegistry()
        auth.register("p1", "old")
        auth.register("p1", "new")
        assert not auth.verify("p1", "old")
        assert auth.verify("p1", "new")

    def test_revoke(self):
        auth = AuthRegistry()
        auth.register("p1", "t")
        assert auth.revoke("p1") is True
        assert not auth.verify("p1", "t")
        assert auth.revoke("p1") is False

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            AuthRegistry().register("p1", "")

    def test_is_known_and_len(self):
        auth = AuthRegistry()
        auth.register("p1", "t")
        assert auth.is_known("p1")
        assert not auth.is_known("p2")
        assert len(auth) == 1

    def test_mint_token_deterministic_and_distinct(self):
        a = AuthRegistry.mint_token("p1", "op-secret")
        b = AuthRegistry.mint_token("p1", "op-secret")
        c = AuthRegistry.mint_token("p2", "op-secret")
        d = AuthRegistry.mint_token("p1", "other-secret")
        assert a == b
        assert a != c and a != d


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateLimiter:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=1.0, burst=3, clock=clock)
        assert [limiter.allow("c") for _ in range(4)] == [True, True, True, False]

    def test_tokens_refill_at_rate(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=2.0, burst=2, clock=clock)
        assert limiter.allow("c") and limiter.allow("c")
        assert not limiter.allow("c")
        clock.now += 0.5  # refills one token at 2/s
        assert limiter.allow("c")
        assert not limiter.allow("c")

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=100.0, burst=2, clock=clock)
        clock.now += 1000.0  # a long idle period must not bank tokens
        results = [limiter.allow("c") for _ in range(3)]
        assert results == [True, True, False]

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_s=1.0, burst=1, clock=clock)
        assert limiter.allow("alice")
        assert not limiter.allow("alice")
        assert limiter.allow("bob")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=1.0, burst=0)
