"""The gateway: order handler + hold/release buffer (paper §2.1).

Gateways sit between market participants and the central exchange
server.  The order handler authenticates and validates incoming
orders, assigns each a globally synchronized timestamp (from the
gateway's Huygens-disciplined clock), and forwards it to the engine;
it also routes confirmations back to participants.  Inbound market
data passes through the hold/release buffer, which dispenses each
piece to this gateway's subscribed participants at its prescribed
release time and reports lateness back to the engine.
"""

from __future__ import annotations

from typing import Dict

from repro.core.auth import AuthRegistry
from repro.core.config import CloudExConfig
from repro.core.marketdata import MarketDataPiece
from repro.core.messages import (
    CancelRequest,
    HoldReleaseReport,
    MarketDataDelivery,
    NewOrderRequest,
    OrderConfirmation,
    StampedCancel,
    StampedOrder,
    SubscriptionRequest,
    TradeConfirmation,
)
from repro.core.order import Order, OrderValidationError, validate_order
from repro.core.types import OrderStatus, RejectReason
from repro.obs import tracing
from repro.sim.engine import Actor, Simulator
from repro.sim.network import Host, Network
from repro.sim.timeunits import MICROSECOND


class Gateway(Actor):
    """One gateway VM's logic.

    ``tracer``, ``events``, and ``counters`` are the optional
    observability hooks (:mod:`repro.obs`); each defaults to None and
    costs one ``is not None`` test on the paths it instruments.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: Host,
        engine_name: str,
        auth: AuthRegistry,
        config: CloudExConfig,
        tracer=None,
        events=None,
        counters=None,
        fairness=None,
    ) -> None:
        super().__init__(sim, host.name)
        self.network = network
        self.host = host
        self.engine_name = engine_name
        self.auth = auth
        self.config = config
        self.tracer = tracer
        self.events = events
        self.clock = host.clock
        self._seq = 0
        self._service_ns = int(config.gateway_service_us * MICROSECOND)
        self._cpu_per_replica_ns = int(config.gateway_cpu_per_replica_us * MICROSECOND)
        # symbol -> participant host names subscribed through this
        # gateway (dict used as an insertion-ordered set).
        self.subscriptions: Dict[str, Dict[str, None]] = {}
        # The fairness policy (repro.fairness) decides how market data
        # is released at this gateway; the cloudex default builds the
        # classic HoldReleaseBuffer with these exact arguments.
        if fairness is None:
            from repro.fairness import make_policy

            fairness = make_policy(config)
        self.hr_buffer = fairness.build_outbound(
            sim=sim,
            clock=self.clock,
            gateway_id=self.name,
            release=self._dispense_market_data,
            report=self._send_report,
            config=config,
            rngs=network.rngs,
            events=events,
            late_counter=counters.counter("hr.late_pieces") if counters is not None else None,
        )
        self.orders_handled = 0
        self.orders_rejected = 0
        self.restarts = 0
        host.bind(self)

    # ------------------------------------------------------------------
    # Crash recovery (repro.chaos)
    # ------------------------------------------------------------------
    def rejoin(self) -> None:
        """Recover after a crash window (the host is already back up).

        A restarted gateway process lost its in-memory state: held
        market data is discarded (the engine's H/R aggregation simply
        never hears about those pieces) and the stamping sequence
        continues monotonically -- correctness for in-flight orders
        rests on participants retrying and the engine's ROS dedup
        answering retries idempotently, not on this gateway recovering
        anything.
        """
        flushed = self.hr_buffer.flush()
        self.restarts += 1
        if self.events is not None:
            from repro.obs.events import Severity

            self.events.emit(
                self.sim.now, Severity.WARNING, self.name, "chaos.gateway_rejoin",
                f"gateway rejoined; flushed {flushed} held md pieces",
                flushed_pieces=flushed,
            )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, msg, sender: str) -> None:
        if isinstance(msg, NewOrderRequest):
            self._handle_order(msg)
        elif isinstance(msg, CancelRequest):
            self._handle_cancel(msg)
        elif isinstance(msg, (OrderConfirmation, TradeConfirmation)):
            self._forward_to_participant(msg)
        elif isinstance(msg, MarketDataPiece):
            self.hr_buffer.offer(msg)
        elif isinstance(msg, SubscriptionRequest):
            self._handle_subscription(msg)
        else:
            super().on_message(msg, sender)

    # ------------------------------------------------------------------
    # Order handler (Fig. 2 steps 1-2, 4-5)
    # ------------------------------------------------------------------
    def _handle_order(self, request: NewOrderRequest) -> None:
        self.host.cpu.charge("order", self._cpu_per_replica_ns)
        order = request.order
        if not self.auth.verify(order.participant_id, request.auth_token):
            self._reject_locally(order, RejectReason.BAD_CREDENTIALS)
            return
        try:
            validate_order(order, known_symbols=self.config.symbols)
        except OrderValidationError as exc:
            self._reject_locally(order, exc.reason)
            return
        self.orders_handled += 1
        self._seq += 1
        stamped = order.stamped_clone(
            gateway_id=self.name,
            gateway_timestamp=self.clock.now(),
            gateway_seq=self._seq,
            stamped_true=self.sim.now,
        )
        if self.tracer is not None:
            self.tracer.span(
                order.participant_id,
                order.client_order_id,
                tracing.GW_INGRESS,
                self.sim.now,
                stamped.gateway_timestamp,
                self.name,
            )
        # The handler's processing time separates stamping (at arrival)
        # from forwarding.
        self.sim.schedule(self._service_ns, self._forward_order, stamped)

    def _forward_order(self, stamped: Order) -> None:
        self.network.send(self.name, self.engine_name, StampedOrder(order=stamped))

    def _reject_locally(self, order: Order, reason: RejectReason) -> None:
        """Gateway-side rejection: never reaches the matching engine."""
        self.orders_rejected += 1
        confirmation = OrderConfirmation(
            participant_id=order.participant_id,
            client_order_id=order.client_order_id,
            symbol=order.symbol,
            status=OrderStatus.REJECTED,
            filled=0,
            remaining=order.quantity,
            engine_timestamp=self.clock.now(),
            reason=reason,
        )
        self.network.send(self.name, order.participant_id, confirmation)

    def _handle_cancel(self, request: CancelRequest) -> None:
        self.host.cpu.charge("cancel", self._cpu_per_replica_ns)
        if not self.auth.verify(request.participant_id, request.auth_token):
            # A forged cancel is silently dropped: confirming anything
            # to an unauthenticated sender would leak order state.
            return
        self._seq += 1
        stamped = StampedCancel(
            participant_id=request.participant_id,
            client_order_id=request.client_order_id,
            symbol=request.symbol,
            gateway_id=self.name,
            gateway_timestamp=self.clock.now(),
            gateway_seq=self._seq,
            stamped_true=self.sim.now,
        )
        self.sim.schedule(
            self._service_ns,
            self.network.send,
            self.name,
            self.engine_name,
            stamped,
        )

    # ------------------------------------------------------------------
    # Confirmation routing (engine -> participant)
    # ------------------------------------------------------------------
    def _forward_to_participant(self, confirmation) -> None:
        """Order confirmations forward immediately (Fig. 2 step 5);
        trade confirmations are held to their release time (step 7)."""
        release_at = getattr(confirmation, "release_at", None)
        if release_at is not None and release_at > self.clock.now():
            if self.tracer is not None:
                self.tracer.span(
                    confirmation.participant_id,
                    confirmation.client_order_id,
                    tracing.HR_HOLD,
                    self.sim.now,
                    self.clock.now(),
                    self.name,
                )
            self.clock.schedule_at_local(release_at, self._release_held, confirmation)
            return
        self.network.send(self.name, confirmation.participant_id, confirmation)

    def _release_held(self, confirmation) -> None:
        """Dispatch a held trade confirmation at its release time."""
        if self.tracer is not None:
            self.tracer.span(
                confirmation.participant_id,
                confirmation.client_order_id,
                tracing.MD_RELEASE,
                self.sim.now,
                self.clock.now(),
                self.name,
            )
        self.network.send(self.name, confirmation.participant_id, confirmation)

    # ------------------------------------------------------------------
    # Market data (H/R buffer -> subscribers)
    # ------------------------------------------------------------------
    def _handle_subscription(self, request: SubscriptionRequest) -> None:
        for symbol in request.symbols:
            # dict-as-ordered-set: deterministic dispense order.
            self.subscriptions.setdefault(symbol, {})[request.participant_id] = None

    def _dispense_market_data(self, piece: MarketDataPiece, released_local: int) -> None:
        delivery = MarketDataDelivery(piece=piece, released_local=released_local)
        for participant in self.subscriptions.get(piece.symbol, ()):
            self.network.send(self.name, participant, delivery)

    def _send_report(self, report: HoldReleaseReport) -> None:
        self.network.send(self.name, self.engine_name, report)

    def __repr__(self) -> str:
        return f"Gateway({self.name!r}, handled={self.orders_handled})"
