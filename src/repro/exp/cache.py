"""Content-hashed on-disk cache for sweep task results.

A cache entry is keyed by everything that determines a task's result:
the fully-resolved task payload (config overrides including the seed,
offered rate, measurement windows) *and* a hash of the simulator's own
source tree.  Editing any file under ``repro/`` therefore invalidates
every entry automatically -- the cache can never serve results from an
older build of the simulator -- while re-running an unchanged sweep
executes zero tasks.

Entries are one JSON file each under ``.repro-cache/`` (configurable),
safe to delete wholesale at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: Optional[str] = None


def code_version_hash() -> str:
    """BLAKE2 digest over the installed ``repro`` package's sources.

    Hashes every ``*.py`` file under the package root in sorted
    relative-path order (path and content both feed the digest), so
    renames, additions, and edits all change the version.  Memoized
    per process: the tree cannot change under a running sweep.
    """
    global _code_version
    if _code_version is not None:
        return _code_version
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _code_version = digest.hexdigest()
    return _code_version


class ResultCache:
    """One-file-per-result cache with content-hashed keys."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, payload: Dict[str, object], code_version: Optional[str] = None) -> str:
        """The cache key for a task payload (see module docstring)."""
        if code_version is None:
            code_version = code_version_hash()
        blob = json.dumps(
            {"payload": payload, "code": code_version},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result for ``key``, or None.

        A corrupt entry (interrupted write, manual tampering) reads as
        a miss and is removed, never an error.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Dict[str, object]) -> None:
        """Store a result atomically (rename over a temp file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(result, sort_keys=True))
        os.replace(tmp, path)

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
