"""Tests for the chaos invariant checker."""

import pytest

from repro.chaos.invariants import (
    VIOLATION,
    WARNING,
    ChaosMonitor,
    InvariantBounds,
    check_invariants,
)
from repro.chaos.scenarios import OrderPump
from repro.core.cluster import CloudExCluster
from repro.core.config import CloudExConfig


@pytest.fixture(scope="module")
def clean_run():
    """A small faultless run with the monitor installed."""
    config = CloudExConfig(
        seed=9,
        n_participants=2,
        n_gateways=2,
        n_symbols=2,
        subscriptions_per_participant=1,
        sequencer_delay_us=1000.0,
        spike_prob=0.0,
        persist_trades=False,
    )
    cluster = CloudExCluster(config)
    monitor = ChaosMonitor(cluster)
    pump = OrderPump(cluster, rate_per_s=100.0, stop_at_s=0.6)
    pump.start()
    cluster.run(duration_s=1.0)
    return cluster, monitor


def _by_invariant(findings):
    return {finding.invariant: finding for finding in findings}


class TestCleanRun:
    def test_no_findings(self, clean_run):
        cluster, monitor = clean_run
        assert check_invariants(cluster, monitor) == []

    def test_monitor_saw_every_admit_and_fill(self, clean_run):
        cluster, monitor = clean_run
        submitted = sum(p.orders_submitted for p in cluster.participants)
        assert submitted > 0
        assert sum(monitor.admits.values()) == submitted
        assert all(count == 1 for count in monitor.admits.values())
        assert sum(p.trades_received for p in cluster.participants) > 0

    def test_second_monitor_rejected(self, clean_run):
        cluster, _ = clean_run
        with pytest.raises(RuntimeError):
            ChaosMonitor(cluster)


class TestCheckers:
    """Each checker detects its violation when the evidence says so."""

    def test_cash_conservation(self, clean_run):
        cluster, monitor = clean_run
        victim = cluster.portfolio.account(cluster.participants[0].name)
        victim.cash += 123
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["cash_conservation"]
            assert finding.severity == VIOLATION
            assert finding.data["actual"] - finding.data["expected"] == 123
        finally:
            victim.cash -= 123

    def test_share_conservation(self, clean_run):
        cluster, monitor = clean_run
        symbol = cluster.config.symbols[0]
        victim = cluster.portfolio.account(cluster.participants[0].name)
        victim.adjust(symbol, 7, 0)
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["share_conservation"]
            assert finding.severity == VIOLATION
            assert finding.data == {"symbol": symbol, "net_shares": 7}
        finally:
            victim.adjust(symbol, -7, 0)

    def test_duplicate_execution(self, clean_run):
        cluster, monitor = clean_run
        key = next(iter(monitor.admits))
        monitor.admits[key] = 2
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["duplicate_execution"]
            assert finding.severity == VIOLATION
            assert finding.data["admits"] == 2
        finally:
            monitor.admits[key] = 1

    def test_overfill(self, clean_run):
        cluster, monitor = clean_run
        key = next(iter(monitor.admits))
        monitor.fills[key] = monitor.quantities[key] + 1
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["overfill"]
            assert finding.severity == VIOLATION
        finally:
            del monitor.fills[key]

    def test_operator_seed_fills_not_flagged(self, clean_run):
        cluster, monitor = clean_run
        # Seed liquidity trades without ever being admitted via ingress;
        # a fill with no matching admit record must not count as overfill.
        key = ("operator", 424242)
        monitor.fills[key] = 1_000_000
        try:
            assert check_invariants(cluster, monitor) == []
        finally:
            del monitor.fills[key]

    def test_monotone_release_bound(self, clean_run):
        cluster, monitor = clean_run
        cluster.metrics.out_of_sequence += 3
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["monotone_release"]
            assert finding.severity == VIOLATION
            # A looser bound absorbs the same evidence.
            relaxed = check_invariants(
                cluster, monitor, InvariantBounds(max_out_of_sequence=3)
            )
            assert relaxed == []
        finally:
            cluster.metrics.out_of_sequence -= 3

    def test_fairness_bound_is_warning(self, clean_run):
        cluster, monitor = clean_run
        findings = check_invariants(
            cluster, monitor, InvariantBounds(max_unfairness_true=-1.0)
        )
        finding = _by_invariant(findings)["bounded_fairness"]
        assert finding.severity == WARNING

    def test_order_loss_classification(self, clean_run):
        cluster, monitor = clean_run
        admitted_key = next(iter(monitor.admits))
        ghost_key = ("p00", 999_999)
        cluster.metrics._submitted[admitted_key] = 0
        cluster.metrics._submitted[ghost_key] = 0
        try:
            findings = _by_invariant(check_invariants(cluster, monitor))
            # Admitted but unconfirmed -> the confirmation was lost, the
            # order itself was not (warning).  Never admitted -> real
            # order loss (violation).
            assert findings["confirmation_loss"].severity == WARNING
            assert findings["confirmation_loss"].data["orders"] == [list(admitted_key)]
            assert findings["order_loss"].severity == VIOLATION
            assert findings["order_loss"].data["orders"] == [list(ghost_key)]
        finally:
            del cluster.metrics._submitted[admitted_key]
            del cluster.metrics._submitted[ghost_key]

    def test_abandoned_orders_surface(self, clean_run):
        cluster, monitor = clean_run
        cluster.participants[0].orders_abandoned += 2
        try:
            finding = _by_invariant(check_invariants(cluster, monitor))["retries_exhausted"]
            assert finding.severity == WARNING
            assert finding.data["orders_abandoned"] == 2
        finally:
            cluster.participants[0].orders_abandoned -= 2

    def test_finding_to_dict(self, clean_run):
        cluster, monitor = clean_run
        cluster.participants[0].orders_abandoned += 1
        try:
            finding = check_invariants(cluster, monitor)[0]
            payload = finding.to_dict()
            assert payload["invariant"] == "retries_exhausted"
            assert set(payload) == {"invariant", "severity", "message", "data"}
        finally:
            cluster.participants[0].orders_abandoned -= 1
