"""Workload assembly helpers.

Functions for attaching strategy-driven Poisson order flow to a set of
participants -- the glue between :mod:`repro.core.cluster` and the
strategies in this package.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.core.participant import Participant
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.traders.base import PoissonArrivalStream, Strategy, TradingAgent
from repro.traders.zi import zi_bulk_fields

#: Builds a strategy for one participant: (participant index, its symbols) -> Strategy.
StrategyFactory = Callable[[int, Sequence[str]], Strategy]


def split_symbols(
    symbols: Sequence[str],
    n_participants: int,
    per_participant: int,
    rngs: RngRegistry,
) -> List[List[str]]:
    """Deterministically assign each participant a symbol subset.

    The base assignment walks the symbol list round-robin, so *when
    capacity allows* (``n_participants * per_participant >=
    len(symbols)``) every symbol gets at least one subscriber before
    any symbol gets a second, and market data flows for the whole
    universe while each participant works a small book.  With fewer
    total slots than symbols, full coverage is impossible; the walk
    then covers exactly the first ``n_participants * per_participant``
    symbols in list order and the remainder go unsubscribed -- a valid
    (if quiet) market, not an error.  Remaining per-participant slots
    beyond the round-robin base are filled randomly from the whole
    universe.
    """
    if per_participant < 1:
        raise ValueError(f"need at least one symbol per participant, got {per_participant}")
    if per_participant > len(symbols):
        raise ValueError(
            f"per_participant={per_participant} exceeds symbol universe {len(symbols)}"
        )
    rng = rngs.stream("workload:symbol-split")
    assignments: List[List[str]] = []
    for index in range(n_participants):
        chosen = {symbols[(index * per_participant + k) % len(symbols)] for k in range(per_participant)}
        while len(chosen) < per_participant:
            chosen.add(symbols[int(rng.integers(len(symbols)))])
        assignments.append(sorted(chosen))
    return assignments


class BulkOrderStream:
    """Bulk-generated merged ZI order flow for one engine shard.

    Where :func:`attach_agents` builds one event-driven
    :class:`TradingAgent` per participant (an event, an RNG draw, and a
    Python callback per opportunity), this models the *merged* flow of
    ``n_participants`` ZI traders over a symbol subset as a single
    chunked numpy stream: Poisson arrival times, participant / symbol /
    side / quantity / price-offset columns, and a gateway-stamp column
    (arrival + base latency + gamma jitter), all drawn whole chunks at
    a time.  This is the order-generation half of the batched kernel
    (:mod:`repro.core.shardrun`); matching consumes the columns in
    gateway-stamp order.

    Determinism contract: all draws are chunk-aligned (see
    :class:`~repro.traders.base.PoissonArrivalStream`), so the stream
    is bit-identical regardless of how the caller windows time -- the
    property that lets the sharded run cut time into conservative-sync
    windows without perturbing the workload.
    """

    def __init__(
        self,
        *,
        arrivals_rng: np.random.Generator,
        fields_rng: np.random.Generator,
        n_participants: int,
        rate_per_s: float,
        n_symbols: int,
        min_qty: int = 1,
        max_qty: int = 100,
        aggression: float = 0.18,
        market_order_fraction: float = 0.10,
        price_sigma_ticks: float = 15.0,
        latency_base_ns: int = 80_000,
        latency_jitter_shape: float = 0.7,
        latency_jitter_scale_ns: float = 30_000.0,
        start_ns: int = 0,
        chunk: int = 4096,
    ) -> None:
        if n_participants < 1:
            raise ValueError(f"need at least one participant, got {n_participants}")
        if n_symbols < 1:
            raise ValueError(f"need at least one symbol, got {n_symbols}")

        def draw_fields(n: int) -> dict:
            fields = zi_bulk_fields(
                fields_rng,
                n,
                n_symbols,
                min_qty=min_qty,
                max_qty=max_qty,
                aggression=aggression,
                market_order_fraction=market_order_fraction,
                price_sigma_ticks=price_sigma_ticks,
            )
            fields["participant"] = fields_rng.integers(0, n_participants, size=n)
            fields["latency"] = latency_base_ns + fields_rng.gamma(
                latency_jitter_shape, latency_jitter_scale_ns, size=n
            ).astype(np.int64)
            return fields

        self.arrivals = PoissonArrivalStream(
            arrivals_rng,
            rate_per_s,
            start_ns=start_ns,
            chunk=chunk,
            field_factory=draw_fields,
        )
        self.emitted = 0

    def take_until(self, t_end_ns: int):
        """Arrivals in the next window: ``(start_index, times, fields)``.

        ``fields`` additionally carries ``stamp`` (gateway timestamp =
        arrival + latency; monotone per arrival chunk only in
        expectation -- matching order is by stamp, not arrival).
        ``start_index`` is the global index of the first row, giving
        every order a stable stream-wide id.
        """
        times, fields = self.arrivals.take_until(t_end_ns)
        fields["stamp"] = times + fields.pop("latency")
        start = self.emitted
        self.emitted += len(times)
        return start, times, fields


def attach_agents(
    sim: Simulator,
    rngs: RngRegistry,
    participants: Sequence[Participant],
    strategy_factory: StrategyFactory,
    symbol_assignments: Sequence[Sequence[str]],
    rate_per_s: float,
    start_delay_ns: int = 0,
) -> List[TradingAgent]:
    """Create and start one agent per participant.

    Each agent gets its own named random stream, so adding or removing
    one participant never changes another's order flow.
    """
    if len(symbol_assignments) != len(participants):
        raise ValueError(
            f"{len(participants)} participants but {len(symbol_assignments)} symbol assignments"
        )
    agents: List[TradingAgent] = []
    for index, participant in enumerate(participants):
        strategy = strategy_factory(index, symbol_assignments[index])
        agent = TradingAgent(
            sim=sim,
            participant=participant,
            strategy=strategy,
            rate_per_s=rate_per_s,
            rng=rngs.stream(f"trader:{participant.name}"),
        )
        agent.start(delay_ns=start_delay_ns)
        agents.append(agent)
    return agents
