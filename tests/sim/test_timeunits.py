"""Tests for time unit conversions."""

from repro.sim import timeunits as tu


def test_constants_are_consistent():
    assert tu.MICROSECOND == 1_000 * tu.NANOSECOND
    assert tu.MILLISECOND == 1_000 * tu.MICROSECOND
    assert tu.SECOND == 1_000 * tu.MILLISECOND


def test_forward_conversions():
    assert tu.us(1.5) == 1_500
    assert tu.ms(2) == 2_000_000
    assert tu.seconds(0.25) == 250_000_000
    assert tu.ns(3.4) == 3


def test_reverse_conversions():
    assert tu.to_us(1_500) == 1.5
    assert tu.to_ms(2_000_000) == 2.0
    assert tu.to_seconds(250_000_000) == 0.25


def test_round_trip():
    for value in (0, 1, 999, 10**9):
        assert tu.us(tu.to_us(value)) == value
