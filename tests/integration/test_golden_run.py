"""Golden-run fixtures: the behavioral contract for performance work.

The committed JSON fixtures pin the *exact* output of two deterministic
runs -- a small cluster with the default feature set and the chaos
``smoke`` scenario.  Any change to event ordering, RNG draw sequence,
matching semantics, or metrics accounting shifts these numbers; a pure
performance optimization must reproduce them bit-for-bit.

Regenerate after an *intentional* behavior change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_run.py

and review the fixture diff like code.
"""

import json
import os
from pathlib import Path

import pytest

from repro.chaos.scenarios import run_scenario
from repro.core.cluster import CloudExCluster
from tests.conftest import small_config

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("GOLDEN_REGEN") == "1"


def _normalize(value):
    """Round-trip through JSON so tuples/ints compare like the fixture."""
    return json.loads(json.dumps(value, sort_keys=True))


def _check(name: str, actual: dict) -> None:
    path = GOLDEN_DIR / name
    actual = _normalize(actual)
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {name}")
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"{name} drifted from the golden fixture -- if the behavior change "
        f"is intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    )


def test_small_cluster_matches_golden():
    cluster = CloudExCluster(small_config())
    cluster.add_default_workload(rate_per_participant=200.0)
    cluster.run(duration_s=0.6)
    summary = cluster.metrics.summary()
    summary["events_processed"] = cluster.sim.events_processed
    summary["d_s"] = cluster.exchange.current_sequencer_delay_ns()
    summary["d_h"] = cluster.exchange.d_h
    summary["rows"] = cluster.trade_table.row_count()
    summary["md_finalized_at_end"] = cluster.finalize_metrics()
    summary["cpu"] = sorted(cluster.cpu_report().items())
    _check("golden_small_cluster.json", summary)


def test_chaos_smoke_matches_golden():
    result = run_scenario("smoke")
    _check("golden_chaos_smoke.json", result.report.to_dict())
