"""Hosts, links, and message delivery.

The network layer plays the role of ZeroMQ-over-cloud in the paper:

- A :class:`Host` is a simulated VM: it has a :class:`HostClock`, a
  :class:`CpuAccountant`, an up/down flag (gateway crashes, §3), and a
  bound :class:`~repro.sim.engine.Actor` that receives messages.
- A :class:`Link` is a unidirectional transport between two hosts with
  a :class:`~repro.sim.latency.LatencyModel`.  Links are FIFO by
  default (ZeroMQ runs over TCP, which never reorders within a
  connection); *cross-link* reordering -- the source of inbound
  unfairness -- arises naturally because different links sample
  different delays.
- The :class:`Network` owns hosts and links and offers ``send``.

Messages delivered to a downed host are counted and dropped, never
raised: crash behaviour is data, not an error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.clock import HostClock
from repro.sim.cpu import CpuAccountant
from repro.sim.engine import Actor, Simulator
from repro.sim.latency import LatencyModel
from repro.sim.rng import BufferedStream, RngRegistry


class Message:
    """A payload in flight, with transport metadata for metrics.

    A plain ``__slots__`` class: one is allocated per send, so the
    per-instance dict and dataclass machinery are measurable overhead.
    """

    __slots__ = ("payload", "src", "dst", "sent_at", "delivered_at")

    def __init__(
        self, payload: Any, src: str, dst: str, sent_at: int, delivered_at: int = -1
    ) -> None:
        self.payload = payload
        self.src = src
        self.dst = dst
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (
            f"Message({self.payload!r}, {self.src}->{self.dst}, "
            f"sent_at={self.sent_at}, delivered_at={self.delivered_at})"
        )


class Host:
    """A simulated VM."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        clock: HostClock,
        baseline_cores: float = 0.0,
        drop_counter=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.cpu = CpuAccountant(baseline_cores=baseline_cores)
        self.actor: Optional[Actor] = None
        self.up: bool = True
        self.dropped_while_down: int = 0
        self.dropped_sends_while_down: int = 0
        #: Optional shared :class:`repro.obs.counters.Counter` so
        #: fault-injection runs report loss instead of hiding it.
        self.drop_counter = drop_counter

    def bind(self, actor: Actor) -> None:
        """Attach the actor that handles this host's inbound messages."""
        if self.actor is not None and self.actor is not actor:
            raise ValueError(f"host {self.name!r} is already bound to {self.actor!r}")
        self.actor = actor

    def crash(self) -> None:
        """Take the host down.

        While down the host neither receives nor sends: a message
        *addressed to* it -- including one already in flight at crash
        time -- is dropped at its scheduled delivery instant if the
        host is still down then (the ``up`` check in :meth:`deliver`;
        a host that restarts before the arrival still receives it),
        and messages its actor tries to send are dropped at the source
        (the ``src.up`` check in :meth:`Link.send`).  Dropped messages
        stay lost after :meth:`restart`; nothing is requeued.
        """
        self.up = False

    def restart(self) -> None:
        """Bring the host back up.  Messages dropped while down stay lost."""
        self.up = True

    def deliver(self, message: Message) -> None:
        """Hand a just-arrived message to the bound actor."""
        if not self.up:
            self.dropped_while_down += 1
            if self.drop_counter is not None:
                self.drop_counter.inc()
            return
        if self.actor is None:
            raise RuntimeError(f"host {self.name!r} has no bound actor for {message.payload!r}")
        message.delivered_at = self.sim.now
        self.actor.on_message(message.payload, message.src)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Host({self.name!r}, {state})"


class Link:
    """A unidirectional, latency-sampling, optionally-FIFO transport.

    Runtime faults (:mod:`repro.chaos`) attach here: a *degradation*
    scales/shifts sampled delays for a window, a *partition* blocks the
    link entirely.  Both are stacked (nested windows compose) and both
    cost exactly one ``is not None`` / truthiness test on the unfaulted
    hot path.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        latency: LatencyModel,
        rngs: RngRegistry,
        fifo: bool = True,
        partition_counter=None,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.fifo = fifo
        # Models that draw a single fixed-signature stream get the
        # chunked fast layer; it is bit-for-bit identical to scalar
        # draws (see BufferedStream), so the sampled delay sequence is
        # the same either way.
        raw_rng = rngs.stream(f"link:{src.name}->{dst.name}")
        self.rng = BufferedStream(raw_rng) if latency.buffer_friendly else raw_rng
        self._last_arrival: int = -1
        self.messages_sent: int = 0
        self.total_delay_ns: int = 0
        # Active latency faults: list of (multiplier, extra_ns) plus
        # their product/sum folded into one tuple (None = no fault).
        self._fault_stack: List[Tuple[float, int]] = []
        self._fault: Optional[Tuple[float, int]] = None
        # Partition nesting depth: > 0 means the link is blocked.
        self._blocked: int = 0
        self.dropped_partitioned: int = 0
        self.partition_counter = partition_counter
        # Prebound per-send hot references (a bound method per send is
        # an allocation; endpoints never change after construction).
        self._deliver = dst.deliver
        self._sample = latency.sample
        self._schedule_message = sim.schedule_message
        self._src_name = src.name
        self._dst_name = dst.name

    # ------------------------------------------------------------------
    # Runtime faults (repro.chaos)
    # ------------------------------------------------------------------
    def push_fault(self, multiplier: float = 1.0, extra_ns: int = 0) -> Tuple[float, int]:
        """Stack a latency fault; returns a token for :meth:`pop_fault`."""
        token = (multiplier, extra_ns)
        self._fault_stack.append(token)
        self._refold_faults()
        return token

    def pop_fault(self, token: Tuple[float, int]) -> None:
        """Remove one previously pushed latency fault."""
        self._fault_stack.remove(token)
        self._refold_faults()

    def _refold_faults(self) -> None:
        if not self._fault_stack:
            self._fault = None
            return
        multiplier = 1.0
        extra = 0
        for m, e in self._fault_stack:
            multiplier *= m
            extra += e
        self._fault = (multiplier, extra)

    def block(self) -> None:
        """Partition this link (nests: block twice, unblock twice)."""
        self._blocked += 1

    def unblock(self) -> None:
        """Remove one level of partition."""
        if self._blocked <= 0:
            raise ValueError(f"link {self.src.name}->{self.dst.name} is not blocked")
        self._blocked -= 1

    @property
    def blocked(self) -> bool:
        return self._blocked > 0

    def prepare(self, payload: Any) -> Tuple[Message, Optional[tuple]]:
        """Everything :meth:`send` does except the scheduling itself.

        Returns ``(message, entry)`` where ``entry`` is an
        ``(arrival_ns, deliver, message)`` triple ready for
        :meth:`~repro.sim.engine.Simulator.schedule_message` (or the
        bulk variant), or ``None`` when the send was dropped at the
        source (downed host, partitioned link).  Splitting preparation
        from scheduling lets fanout sites collect a whole train of
        deliveries and hand them to ``schedule_message_bulk`` in one
        call -- the RNG draws, FIFO bumping, and counters happen here,
        in per-call order, so a bulk-scheduled fanout is bit-identical
        to a loop of sends.
        """
        now = self.sim.now
        message = Message(payload, self._src_name, self._dst_name, now)
        if not self.src.up:
            self.src.dropped_sends_while_down += 1
            if self.src.drop_counter is not None:
                self.src.drop_counter.inc()
            return message, None
        if self._blocked:
            self.dropped_partitioned += 1
            if self.partition_counter is not None:
                self.partition_counter.inc()
            return message, None
        delay = self._sample(self.rng, now)
        if self._fault is not None:
            multiplier, extra_ns = self._fault
            delay = int(delay * multiplier) + extra_ns
        arrival = now + delay
        if self.fifo and arrival <= self._last_arrival:
            arrival = self._last_arrival + 1
        self._last_arrival = arrival
        self.messages_sent += 1
        self.total_delay_ns += arrival - now
        return message, (arrival, self._deliver, message)

    def send(self, payload: Any) -> Message:
        """Sample a delay and schedule delivery at the destination.

        A send from a downed source host, or over a partitioned link,
        is dropped at the source: the Message is returned (callers need
        the handle) but never scheduled for delivery.
        """
        message, entry = self.prepare(payload)
        if entry is not None:
            self._schedule_message(entry[0], entry[1], entry[2])
        return message

    def mean_delay_us(self) -> float:
        """Average observed one-way delay, in microseconds."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_delay_ns / self.messages_sent / 1_000

    def __repr__(self) -> str:
        return f"Link({self.src.name}->{self.dst.name}, {self.latency!r})"


class Network:
    """The fabric: a registry of hosts and directed links."""

    def __init__(self, sim: Simulator, rngs: RngRegistry, counters=None) -> None:
        self.sim = sim
        self.rngs = rngs
        self.hosts: Dict[str, Host] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        # One shared drop counter for every host (created lazily so a
        # bare Network without a registry stays dependency-free).
        self._drop_counter = (
            counters.counter("net.dropped_while_down") if counters is not None else None
        )
        self._partition_counter = (
            counters.counter("net.dropped_partitioned") if counters is not None else None
        )

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_host(
        self,
        name: str,
        drift_ppb: int = 0,
        offset_ns: int = 0,
        baseline_cores: float = 0.0,
    ) -> Host:
        """Create and register a host with its own (possibly wrong) clock."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        clock = HostClock(self.sim, drift_ppb=drift_ppb, offset_ns=offset_ns)
        host = Host(
            self.sim, name, clock, baseline_cores=baseline_cores,
            drop_counter=self._drop_counter,
        )
        self.hosts[name] = host
        return host

    def connect(self, src: str, dst: str, latency: LatencyModel, fifo: bool = True) -> Link:
        """Create the directed link src -> dst.  One link per pair."""
        key = (src, dst)
        if key in self.links:
            raise ValueError(f"link {src}->{dst} already exists")
        link = Link(
            self.sim, self.hosts[src], self.hosts[dst], latency, self.rngs,
            fifo=fifo, partition_counter=self._partition_counter,
        )
        self.links[key] = link
        return link

    def connect_bidirectional(
        self, a: str, b: str, latency: LatencyModel, fifo: bool = True
    ) -> Tuple[Link, Link]:
        """Create both directions with the same latency model (independent draws)."""
        return (
            self.connect(a, b, latency, fifo=fifo),
            self.connect(b, a, latency, fifo=fifo),
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def link(self, src: str, dst: str) -> Link:
        """Look up the directed link src -> dst."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src}->{dst}; call connect() first") from None

    def send(self, src: str, dst: str, payload: Any) -> Message:
        """Send ``payload`` from ``src`` to ``dst`` over their link."""
        link = self.links.get((src, dst))
        if link is None:
            raise KeyError(f"no link {src}->{dst}; call connect() first")
        return link.send(payload)

    def send_many(self, src: str, sends: "List[Tuple[str, Any]]") -> List[Message]:
        """Send a fanout train ``[(dst, payload), ...]`` from ``src``.

        Semantically identical to calling :meth:`send` once per pair in
        order -- each link's latency draws, FIFO bumping, and counters
        happen per destination in the given order, and
        ``schedule_message_bulk`` consumes the same sequence numbers a
        send loop would -- but the simulator heap is maintained once
        for the whole train instead of once per destination.  Built for
        the market-data publish fanout, where one book event becomes
        one message per MD gateway.
        """
        links = self.links
        entries = []
        messages = []
        for dst, payload in sends:
            link = links.get((src, dst))
            if link is None:
                raise KeyError(f"no link {src}->{dst}; call connect() first")
            message, entry = link.prepare(payload)
            messages.append(message)
            if entry is not None:
                entries.append(entry)
        self.sim.schedule_message_bulk(entries)
        return messages

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    # ------------------------------------------------------------------
    # Runtime faults (repro.chaos)
    # ------------------------------------------------------------------
    def links_touching(self, host: str) -> List[Link]:
        """Every link with ``host`` as source or destination."""
        if host not in self.hosts:
            raise KeyError(f"unknown host {host!r}")
        return [
            link for (src, dst), link in self.links.items() if host in (src, dst)
        ]

    def degrade_link(
        self, src: str, dst: str, multiplier: float = 1.0, extra_ns: int = 0
    ) -> Tuple[float, int]:
        """Stack a latency fault on src -> dst; returns the pop token."""
        return self.link(src, dst).push_fault(multiplier, extra_ns)

    def restore_link(self, src: str, dst: str, token: Tuple[float, int]) -> None:
        """Remove a previously stacked latency fault from src -> dst."""
        self.link(src, dst).pop_fault(token)

    def partition(self, group_a, group_b) -> List[Link]:
        """Block every existing link between the two host groups (both
        directions).  Returns the blocked links for :meth:`heal`."""
        blocked: List[Link] = []
        for a in group_a:
            for b in group_b:
                for key in ((a, b), (b, a)):
                    link = self.links.get(key)
                    if link is not None:
                        link.block()
                        blocked.append(link)
        return blocked

    def heal(self, blocked: List[Link]) -> None:
        """Undo one :meth:`partition` call."""
        for link in blocked:
            link.unblock()

    def __repr__(self) -> str:
        return f"Network(hosts={len(self.hosts)}, links={len(self.links)})"
