"""Job-spec normalization and content-addressed identity."""

import pytest

from repro.serve.schema import (
    JOB_KINDS,
    SCHEMA,
    JobError,
    build_sweep_spec,
    describe,
    job_key,
    normalize_job,
)

SWEEP_RAW = {
    "kind": "sweep",
    "grid": [{"n_shards": 1}, {"n_shards": 2}],
    "seeds": 2,
    "warmup_s": 0.05,
    "duration_s": 0.1,
    "rate_per_participant": 100,
    "base": {"n_participants": 4, "n_gateways": 2, "n_symbols": 4,
             "subscriptions_per_participant": 2},
}


class TestNormalizeSweep:
    def test_defaults_made_explicit(self):
        spec = normalize_job(SWEEP_RAW)
        assert spec["schema"] == SCHEMA
        assert spec["kind"] == "sweep"
        assert spec["name"] == "sweep"
        assert spec["master_seed"] == 0
        assert spec["rate_per_participant"] == 100.0

    def test_field_order_and_spelled_out_defaults_share_identity(self):
        # Two clients describing the same experiment differently must
        # land on the same run_id -- this is what makes dedup work.
        terse = normalize_job(SWEEP_RAW)
        verbose_raw = dict(reversed(list(SWEEP_RAW.items())))
        verbose_raw["name"] = "sweep"
        verbose_raw["master_seed"] = 0
        verbose_raw["schema"] = SCHEMA
        verbose = normalize_job(verbose_raw)
        assert terse == verbose
        assert job_key(terse, "v1") == job_key(verbose, "v1")

    def test_key_covers_spec_and_code_version(self):
        spec = normalize_job(SWEEP_RAW)
        other = normalize_job({**SWEEP_RAW, "seeds": 3})
        assert job_key(spec, "v1") != job_key(other, "v1")
        assert job_key(spec, "v1") != job_key(spec, "v2")

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown field"):
            normalize_job({**SWEEP_RAW, "jobs": 4})

    def test_empty_grid_rejected(self):
        with pytest.raises(JobError, match="grid"):
            normalize_job({**SWEEP_RAW, "grid": []})

    def test_bad_config_field_caught_at_submission(self):
        with pytest.raises(JobError, match="invalid sweep spec"):
            normalize_job({**SWEEP_RAW, "grid": [{"n_shardz": 1}]})

    def test_seed_override_in_grid_rejected(self):
        with pytest.raises(JobError, match="invalid sweep spec"):
            normalize_job({**SWEEP_RAW, "grid": [{"seed": 3}]})

    def test_explicit_seed_list_accepted(self):
        spec = normalize_job({**SWEEP_RAW, "seeds": [7, 9]})
        tasks = build_sweep_spec(spec).expand()
        assert [t.seed for t in tasks] == [7, 9, 7, 9]

    def test_bad_seeds_rejected(self):
        with pytest.raises(JobError, match="seeds"):
            normalize_job({**SWEEP_RAW, "seeds": 0})
        with pytest.raises(JobError, match="seeds"):
            normalize_job({**SWEEP_RAW, "seeds": [1, "x"]})

    def test_build_sweep_spec_matches_cli_construction(self):
        from repro.exp.spec import SweepSpec

        spec = normalize_job(SWEEP_RAW)
        built = build_sweep_spec(spec)
        direct = SweepSpec(
            name="sweep",
            grid=[{"n_shards": 1}, {"n_shards": 2}],
            seeds=2,
            master_seed=0,
            warmup_s=0.05,
            duration_s=0.1,
            rate_per_participant=100.0,
            base=SWEEP_RAW["base"],
        )
        assert [t.key for t in built.expand()] == [t.key for t in direct.expand()]
        assert [t.seed for t in built.expand()] == [t.seed for t in direct.expand()]


class TestNormalizeChaosAndBench:
    def test_chaos_defaults(self):
        spec = normalize_job({"kind": "chaos", "scenario": "smoke"})
        assert spec == {"kind": "chaos", "scenario": "smoke", "seed": 11,
                        "schema": SCHEMA}

    def test_chaos_unknown_scenario_rejected(self):
        with pytest.raises(JobError, match="unknown chaos scenario"):
            normalize_job({"kind": "chaos", "scenario": "kernel-panic"})

    def test_chaos_scenario_required(self):
        with pytest.raises(JobError, match="scenario"):
            normalize_job({"kind": "chaos"})

    def test_bench_defaults(self):
        spec = normalize_job({"kind": "bench"})
        assert spec == {"kind": "bench", "suite": "all", "quick": True,
                        "repeats": 1, "schema": SCHEMA}

    def test_bench_bad_suite_rejected(self):
        with pytest.raises(JobError, match="suite"):
            normalize_job({"kind": "bench", "suite": "nano"})


class TestEnvelope:
    def test_non_object_rejected(self):
        with pytest.raises(JobError, match="JSON object"):
            normalize_job([1, 2])

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="kind"):
            normalize_job({"kind": "train"})
        assert JOB_KINDS == ("sweep", "chaos", "bench", "fairness")

    def test_unknown_schema_rejected(self):
        with pytest.raises(JobError, match="schema"):
            normalize_job({"kind": "chaos", "scenario": "smoke",
                           "schema": "repro-job/999"})

    def test_describe_one_liners(self):
        assert "2 point(s) x 2 seed(s)" in describe(normalize_job(SWEEP_RAW))
        assert "chaos smoke" in describe(
            normalize_job({"kind": "chaos", "scenario": "smoke"})
        )
        assert "bench all (quick)" == describe(normalize_job({"kind": "bench"}))
